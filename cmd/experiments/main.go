// Command experiments regenerates every table and figure of the paper's
// evaluation:
//
//	table1   — required test lengths, conventional random test (12 circuits)
//	table2   — simulated fault coverage, conventional patterns (4 circuits)
//	table3   — required test lengths, optimized random test (4 circuits)
//	table4   — simulated fault coverage, optimized patterns (4 circuits)
//	table5   — CPU time of the optimizing procedure (4 circuits)
//	fig2     — fault coverage vs. pattern count for S1, both weightings
//	appendix — optimized input probabilities (0.05 grid) for C2670/C7552
//	adaptive — closed-loop campaigns vs the static optimum (patterns to
//	           reach 90/95/99 % coverage per marked circuit)
//	sweep    — engine demo: circuits × weightings × seeds on a worker pool
//
// Usage:
//
//	experiments -run all
//	experiments -run table1,table3 -seed 7
//	experiments -run sweep -workers 8 -sweepreps 10
//	experiments -run sweep -remote localhost:8417
//
// Campaigns and optimizations run on a bounded worker pool (-workers,
// default GOMAXPROCS); every reported number is bit-identical for any
// worker count.
//
// -remote routes every campaign grid (tables 2 and 4, the sweep)
// through an optirandd service instead of the in-process pool. The
// engine's backend contract keeps all reported numbers bit-identical
// to the local run; repeated grids are answered from the daemon's
// content-addressed result cache.
//
// Measured values are printed next to the paper's; absolute agreement is
// not expected (the circuits are functional analogues; see DESIGN.md §3)
// but the qualitative shape — which circuits are resistant, how far
// optimization shrinks the test length — must and does hold.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"optirand"
	"optirand/internal/report"
)

var (
	flagRun        = flag.String("run", "all", "comma-separated experiments: table1,table2,table3,table4,table5,fig2,appendix,multidist,hybrid,adaptive,sweep,all")
	flagSeed       = flag.Uint64("seed", 1987, "PRNG seed for simulation experiments")
	flagConfidence = flag.Float64("confidence", optirand.DefaultConfidence, "confidence level for required test lengths")
	flagQuick      = flag.Bool("quick", false, "reduce simulation pattern counts 4x (for smoke runs)")
	flagCurveStep  = flag.Int("curvestep", 500, "fig2: coverage sampling interval in patterns")
	flagWorkers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for campaigns and optimization (results are identical for any count)")
	flagSweepReps  = flag.Int("sweepreps", 5, "sweep: independently seeded campaigns per circuit × weighting cell")
	flagRemote     = flag.String("remote", "", "optirandd address (host:port or URL); run campaign grids on the service instead of in-process")
	flagRemoteTO   = flag.Duration("remotetimeout", 0, "per-request timeout against -remote (0 = none; grids are long requests by design)")
	flagJournal    = flag.String("journal", "", "journal completed campaigns in this directory and resume from it: an interrupted experiment re-run replays finished grid cells instead of recomputing")
)

// runner executes every campaign grid of the experiments: one Runner,
// constructed from the flags, serving the in-process pool or — with
// -remote — an optirandd service. Both backends honor the same
// contract, so the tables cannot change. ctx cancels long grids on ^C.
var (
	runner *optirand.Runner
	ctx    context.Context
)

// newRunner builds the flag-selected Runner. Leftover workers shard
// fault lists inside the four marked circuits' campaigns; sharding
// cannot change any reported number.
func newRunner() *optirand.Runner {
	opts := []optirand.Option{
		optirand.WithWorkers(workers()),
		optirand.WithSimWorkers((workers() + 3) / 4),
		optirand.WithSeed(*flagSeed),
	}
	if *flagRemote != "" {
		opts = append(opts, optirand.WithRemote(*flagRemote), optirand.WithRemoteTimeout(*flagRemoteTO))
	}
	if *flagJournal != "" {
		opts = append(opts, optirand.WithJournal(*flagJournal))
	}
	return optirand.NewRunner(opts...)
}

// workers resolves the -workers flag (values < 1 mean GOMAXPROCS).
func workers() int {
	if *flagWorkers > 0 {
		return *flagWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// lab bundles everything computed once per circuit and shared between
// experiments (optimizations are reused across tables 3, 4, 5 and the
// appendix).
type lab struct {
	seed    uint64
	conf    float64
	builds  map[string]*optirand.Circuit
	faults  map[string][]optirand.Fault // live (not proven undetectable)
	sizes   map[string][]int            // equivalence class size per live fault
	dropped map[string]int
	opts    map[string]*optirand.OptimizeResult
	optTime map[string]time.Duration
}

func newLab(seed uint64, conf float64) *lab {
	return &lab{
		seed:    seed,
		conf:    conf,
		builds:  make(map[string]*optirand.Circuit),
		faults:  make(map[string][]optirand.Fault),
		sizes:   make(map[string][]int),
		dropped: make(map[string]int),
		opts:    make(map[string]*optirand.OptimizeResult),
		optTime: make(map[string]time.Duration),
	}
}

func (l *lab) circuit(b optirand.Benchmark) *optirand.Circuit {
	if c, ok := l.builds[b.Name]; ok {
		return c
	}
	c := b.Build()
	l.builds[b.Name] = c
	return c
}

// liveFaults returns the collapsed fault list minus faults proven
// undetectable by the analysis (estimate exactly 0 from structural
// constants / unobservable lines). The paper computes coverage "only
// with respect to those faults which are not proven to be undetectable".
func (l *lab) liveFaults(b optirand.Benchmark) []optirand.Fault {
	if f, ok := l.faults[b.Name]; ok {
		return f
	}
	c := l.circuit(b)
	u := optirand.Faults(c)
	probs := optirand.EstimateDetectProbs(c, u.Reps, optirand.UniformWeights(c))
	var live []optirand.Fault
	var sizes []int
	for i, f := range u.Reps {
		if probs[i] > 0 {
			live = append(live, f)
			sizes = append(sizes, len(u.Classes[i]))
		}
	}
	l.faults[b.Name] = live
	l.sizes[b.Name] = sizes
	l.dropped[b.Name] = len(u.Reps) - len(live)
	return live
}

// weightedCoverage reports fault coverage over the uncollapsed fault
// universe: a detected representative detects its whole equivalence
// class, so classes are weighted by size (the convention under which
// fault-coverage percentages are usually published).
func (l *lab) weightedCoverage(b optirand.Benchmark, res *optirand.CampaignResult) float64 {
	sizes := l.sizes[b.Name]
	det, tot := 0, 0
	for i, s := range sizes {
		tot += s
		if res.FirstDetected[i] > 0 {
			det += s
		}
	}
	if tot == 0 {
		return 1
	}
	return float64(det) / float64(tot)
}

func (l *lab) optimize(b optirand.Benchmark) *optirand.OptimizeResult {
	if r, ok := l.opts[b.Name]; ok {
		return r
	}
	c := l.circuit(b)
	faults := l.liveFaults(b)
	start := time.Now()
	res, err := runner.Optimize(ctx, optirand.OptimizeSpec{
		Circuit: c,
		Faults:  faults,
		Options: optirand.OptimizeOptions{
			Confidence: l.conf,
			Quantize:   0.05, // the paper's appendix grid
			Workers:    workers(),
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "optimize %s: %v\n", b.Name, err)
		os.Exit(1)
	}
	l.optTime[b.Name] = time.Since(start)
	l.opts[b.Name] = res
	return res
}

func (l *lab) patterns(b optirand.Benchmark) int {
	n := b.SimPatterns
	if *flagQuick {
		n /= 4
	}
	return n
}

// markedCampaigns fans the four marked circuits' campaigns out as one
// Runner batch; weightsFor selects each circuit's weight vector. Every
// campaign carries the same explicit seed (the tables compare
// weightings under one pattern stream), which is what Runner.Batch —
// unlike the identity-seeded Sweep — is for.
func (l *lab) markedCampaigns(weightsFor func(b optirand.Benchmark) []float64) map[string]*optirand.CampaignResult {
	var specs []optirand.CampaignSpec
	for _, b := range optirand.MarkedBenchmarks() {
		specs = append(specs, optirand.CampaignSpec{
			Label:    b.Name,
			Circuit:  l.circuit(b),
			Faults:   l.liveFaults(b),
			Source:   optirand.Weights(weightsFor(b)),
			Patterns: l.patterns(b),
			Seed:     l.seed,
		})
	}
	results, err := runner.Batch(ctx, specs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaigns: %v\n", err)
		os.Exit(1)
	}
	out := make(map[string]*optirand.CampaignResult, len(results))
	for _, r := range results {
		out[r.Task.Label] = r.Campaign
	}
	return out
}

func table1(l *lab) {
	t := report.NewTable("Table 1: necessary test lengths, conventional random test (weights 0.5)",
		"Circuit", "Gates", "Faults", "Undet.", "N (measured)", "N (paper)", "Marked")
	for _, b := range optirand.Benchmarks() {
		c := l.circuit(b)
		faults := l.liveFaults(b)
		probs := optirand.EstimateDetectProbs(c, faults, optirand.UniformWeights(c))
		res := optirand.RequiredTestLength(probs, l.conf)
		mark := ""
		if b.Marked {
			mark = "*"
		}
		t.Add(b.PaperName, fmt.Sprint(c.NumGates()), fmt.Sprint(len(faults)),
			fmt.Sprint(l.dropped[b.Name]), report.Sci(res.N), report.Sci(b.PaperT1), mark)
	}
	fmt.Print(t, "\n")
}

func table2(l *lab) {
	t := report.NewTable("Table 2: fault coverage by simulation, conventional random patterns",
		"Circuit", "Patterns", "Coverage (measured)", "Coverage (paper)")
	camps := l.markedCampaigns(func(b optirand.Benchmark) []float64 {
		return optirand.UniformWeights(l.circuit(b))
	})
	for _, b := range optirand.MarkedBenchmarks() {
		t.Add(b.PaperName, report.Count(l.patterns(b)),
			report.Pct(l.weightedCoverage(b, camps[b.Name])),
			fmt.Sprintf("%.1f %%", b.PaperCov2))
	}
	fmt.Print(t, "\n")
}

func table3(l *lab) {
	t := report.NewTable("Table 3: necessary test lengths, optimized random test",
		"Circuit", "N conv.", "N opt. (measured)", "N opt. (paper)", "Gain", "Sweeps")
	for _, b := range optirand.MarkedBenchmarks() {
		res := l.optimize(b)
		t.Add(b.PaperName, report.Sci(res.InitialN), report.Sci(res.FinalN),
			report.Sci(b.PaperT3), report.Sci(res.Gain()), fmt.Sprint(res.Sweeps))
	}
	fmt.Print(t, "\n")
}

func table4(l *lab) {
	t := report.NewTable("Table 4: fault coverage by simulation, optimized random patterns",
		"Circuit", "Patterns", "Coverage (measured)", "Coverage (paper)")
	camps := l.markedCampaigns(func(b optirand.Benchmark) []float64 {
		return l.optimize(b).Weights
	})
	for _, b := range optirand.MarkedBenchmarks() {
		t.Add(b.PaperName, report.Count(l.patterns(b)),
			report.Pct(l.weightedCoverage(b, camps[b.Name])),
			fmt.Sprintf("%.1f %%", b.PaperCov4))
	}
	fmt.Print(t, "\n")
}

func table5(l *lab) {
	t := report.NewTable("Table 5: CPU time for optimizing input probabilities",
		"Circuit", "Time (this machine)", "Analyses", "Paper (SIEMENS 7561, 2.5 MIPS)")
	paperSec := map[string]string{"S1": "300 s", "S2": "600 s", "C2670": "1,200 s", "C7552": "2,000 s"}
	for _, b := range optirand.MarkedBenchmarks() {
		res := l.optimize(b)
		t.Add(b.PaperName, l.optTime[b.Name].Round(time.Millisecond).String(),
			fmt.Sprint(res.Analyses), paperSec[b.PaperName])
	}
	fmt.Print(t, "\n")
}

func fig2(l *lab) {
	b, _ := optirand.BenchmarkByName("s1")
	c := l.circuit(b)
	faults := l.liveFaults(b)
	n := l.patterns(b)
	step := *flagCurveStep
	opt := l.optimize(b)
	curves, err := runner.Batch(ctx, []optirand.CampaignSpec{
		{Label: "conventional", Circuit: c, Faults: faults, Source: optirand.Weights(optirand.UniformWeights(c)), Patterns: n, Seed: l.seed, CurveStep: step},
		{Label: "optimized", Circuit: c, Faults: faults, Source: optirand.Weights(opt.Weights), Patterns: n, Seed: l.seed, CurveStep: step},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fig2: %v\n", err)
		os.Exit(1)
	}
	conv, optc := curves[0].Campaign, curves[1].Campaign

	t := report.NewTable("Figure 2: fault coverage vs. pattern count (S1)",
		"Patterns", "Conventional", "Optimized")
	type pt struct{ conv, opt float64 }
	series := map[int]*pt{}
	keys := []int{}
	get := func(p int) *pt {
		if s, ok := series[p]; ok {
			return s
		}
		s := &pt{-1, -1}
		series[p] = s
		keys = append(keys, p)
		return s
	}
	for _, p := range conv.Curve {
		get(p.Patterns).conv = p.Coverage
	}
	for _, p := range optc.Curve {
		get(p.Patterns).opt = p.Coverage
	}
	// keys were appended in ascending order per curve; merge-sort them.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	lastConv, lastOpt := 0.0, 0.0
	for _, p := range keys {
		s := series[p]
		if s.conv >= 0 {
			lastConv = s.conv
		}
		if s.opt >= 0 {
			lastOpt = s.opt
		}
		t.Add(report.Count(p), report.Pct(lastConv), report.Pct(lastOpt))
	}
	fmt.Print(t, "\n")
	fmt.Printf("(paper: conventional reaches ~80.7%% at 12,000 patterns; optimized ~99.7%%)\n\n")
}

func appendix(l *lab) {
	for _, name := range []string{"c2670", "c7552"} {
		b, _ := optirand.BenchmarkByName(name)
		c := l.circuit(b)
		res := l.optimize(b)
		fmt.Printf("Appendix: optimized input probabilities for the circuit %s (0.05 grid)\n", b.PaperName)
		for i, w := range res.Weights {
			fmt.Printf("  %-8s %.2f", c.GateName(c.Inputs[i]), w)
			if (i+1)%4 == 0 {
				fmt.Println()
			}
		}
		fmt.Println()
		fmt.Println()
	}
}

// multidist demonstrates the §5.3 extension (fault-set partitioning
// with one distribution per part) on the divider — the circuit whose
// fault set contains the "pairs of faults with distant test sets" the
// paper identifies as the limit of single-distribution optimization.
func multidist(l *lab) {
	b, _ := optirand.BenchmarkByName("s2")
	c := l.circuit(b)
	faults := l.liveFaults(b)
	m, err := optirand.OptimizeMultiDistribution(c, faults, 4, optirand.OptimizeOptions{
		Confidence: l.conf,
		Quantize:   0.05,
		Workers:    workers(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "multidist: %v\n", err)
		os.Exit(1)
	}
	n := l.patterns(b)
	sims, err := runner.Batch(ctx, []optirand.CampaignSpec{
		{Label: "single", Circuit: c, Faults: faults, Source: optirand.Weights(m.WeightSets[0]), Patterns: n, Seed: l.seed},
		{Label: "mixture", Circuit: c, Faults: faults, Source: optirand.Mixture(m.WeightSets...), Patterns: n, Seed: l.seed},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "multidist: %v\n", err)
		os.Exit(1)
	}
	single, mix := sims[0].Campaign, sims[1].Campaign

	t := report.NewTable("Extension (paper §5.3): partitioned fault set, one distribution per part (S2)",
		"Configuration", "Estimated N", "Coverage @ "+report.Count(n))
	t.Add("single distribution", report.Sci(m.SingleN), report.Pct(l.weightedCoverage(b, single)))
	t.Add(fmt.Sprintf("%d-part mixture", m.Parts()), report.Sci(m.MixtureN), report.Pct(l.weightedCoverage(b, mix)))
	fmt.Print(t)
	fmt.Printf("partition sizes: %v (part 0 = full fault set)\n\n", m.PartSizes)
}

// hybrid demonstrates the §5.2 production flow on the marked circuits:
// optimized random patterns plus PODEM top-off for the residue.
func hybrid(l *lab) {
	t := report.NewTable("Extension (paper §5.2): optimized random + deterministic top-off",
		"Circuit", "Random patterns", "Random detects", "Top-off patterns", "Redundant", "Aborted", "Coverage")
	for _, b := range optirand.MarkedBenchmarks() {
		if b.Name == "s2" {
			continue // PODEM on the 1155-level divider exceeds the demo budget
		}
		c := l.circuit(b)
		faults := l.liveFaults(b)
		res := l.optimize(b)
		h := optirand.HybridTest(c, faults, res.Weights, 2000, l.seed, 20000)
		t.Add(b.PaperName, report.Count(h.RandomPatterns), fmt.Sprint(h.RandomDetected),
			fmt.Sprint(h.TopOffPatterns), fmt.Sprint(h.Redundant), fmt.Sprint(h.Aborted),
			report.Pct(h.Coverage()))
	}
	fmt.Print(t, "\n")
}

// patternsTo reads the first curve sample at or above the target
// coverage; "—" if the campaign never got there.
func patternsTo(res *optirand.CampaignResult, target float64) string {
	for _, p := range res.Curve {
		if p.Coverage >= target {
			return report.Count(p.Patterns)
		}
	}
	return "—"
}

// adaptiveExp compares closed-loop campaigns against the paper's
// static §5 optimum: both start from the same optimized weights and
// the same seed, but the adaptive run re-optimizes against the
// still-undetected residue at every block boundary. The table reports
// patterns to reach 90/95/99 % coverage per marked circuit.
func adaptiveExp(l *lab) {
	t := report.NewTable("Adaptive campaigns: patterns to reach coverage, closed-loop vs static §5 optimum",
		"Circuit", "Source", "N @ 90 %", "N @ 95 %", "N @ 99 %", "Final cov.", "Rounds")
	for _, b := range optirand.MarkedBenchmarks() {
		c := l.circuit(b)
		faults := l.liveFaults(b)
		opt := l.optimize(b)
		n := l.patterns(b)
		static := optirand.Weights(opt.Weights)
		adaptive := optirand.Adaptive(static,
			optirand.AdaptiveReopt(),
			optirand.AdaptiveBlock(n/8), // up to eight re-weighting rounds
			optirand.AdaptiveReoptSweeps(2))
		sims, err := runner.Batch(ctx, []optirand.CampaignSpec{
			{Label: "static", Circuit: c, Faults: faults, Source: static, Patterns: n, Seed: l.seed, CurveStep: 64},
			{Label: "adaptive", Circuit: c, Faults: faults, Source: adaptive, Patterns: n, Seed: l.seed, CurveStep: 64},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptive: %v\n", err)
			os.Exit(1)
		}
		for _, r := range sims {
			res := r.Campaign
			rounds := ""
			if res.Adaptive != nil {
				rounds = fmt.Sprint(len(res.Adaptive.Rounds))
			}
			t.Add(b.PaperName, r.Task.Label, patternsTo(res, 0.90), patternsTo(res, 0.95),
				patternsTo(res, 0.99), report.Pct(res.Coverage()), rounds)
		}
	}
	fmt.Print(t, "\n")
}

// sweepExp demonstrates the campaign engine beyond the paper's tables:
// a marked-circuit × {conventional, optimized} × multi-seed grid runs
// on one bounded worker pool, reporting the coverage spread across
// seeds. Per-task seeds derive from task identity, so the table is
// reproducible for any worker count — and for any backend: the same
// SweepSpec streams through Runner.SweepEach, which delivers each
// campaign as it lands and merges positionally identical to Sweep.
func sweepExp(l *lab) {
	reps := *flagSweepReps
	if reps < 1 {
		reps = 1
	}
	sweep := optirand.SweepSpec{
		BaseSeed:    l.seed,
		Repetitions: reps,
	}
	for _, b := range optirand.MarkedBenchmarks() {
		c := l.circuit(b)
		sweep.Circuits = append(sweep.Circuits, optirand.SweepCircuit{
			Name:     b.Name,
			Circuit:  c,
			Faults:   l.liveFaults(b),
			Patterns: l.patterns(b),
			Weightings: []optirand.SweepWeighting{
				{Name: "conventional", Source: optirand.Weights(optirand.UniformWeights(c))},
				{Name: "optimized", Source: optirand.Weights(l.optimize(b).Weights)},
			},
		})
	}
	start := time.Now()
	var results []optirand.TaskResult
	done := 0
	err := runner.SweepEach(ctx, sweep, func(i int, res optirand.TaskResult) {
		for len(results) <= i {
			results = append(results, optirand.TaskResult{})
		}
		results[i] = res
		done++
		fmt.Fprintf(os.Stderr, "\rsweep: %d campaigns done", done)
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	t := report.NewTable(
		fmt.Sprintf("Campaign sweep: %d tasks (%d circuits × 2 weightings × %d seeds), %d workers",
			len(results), len(sweep.Circuits), reps, workers()),
		"Circuit", "Weighting", "Patterns", "Cov. mean", "Cov. min", "Cov. max")
	for i := 0; i < len(results); i += reps {
		cell := results[i : i+reps]
		sum, lo, hi := 0.0, 1.0, 0.0
		for _, r := range cell {
			cov := r.Campaign.Coverage()
			sum += cov
			if cov < lo {
				lo = cov
			}
			if cov > hi {
				hi = cov
			}
		}
		label := cell[0].Task.Label
		name := label[:strings.IndexByte(label, '/')]
		weighting := label[len(name)+1 : strings.IndexByte(label, '#')]
		t.Add(name, weighting, report.Count(cell[0].Task.Patterns),
			report.Pct(sum/float64(len(cell))), report.Pct(lo), report.Pct(hi))
	}
	fmt.Print(t)
	fmt.Printf("sweep wall time: %s\n\n", elapsed.Round(time.Millisecond))
}

func main() {
	flag.Parse()
	runner = newRunner()
	defer runner.Close()
	var stop context.CancelFunc
	ctx, stop = signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// First ^C cancels ctx; unregistering then restores the default
	// signal disposition, so a second ^C terminates even while
	// non-interruptible local work is still finishing.
	go func() { <-ctx.Done(); stop() }()
	l := newLab(*flagSeed, *flagConfidence)
	runs := strings.Split(*flagRun, ",")
	if *flagRun == "all" {
		runs = []string{"table1", "table2", "table3", "table4", "table5", "fig2", "appendix", "multidist", "hybrid", "adaptive", "sweep"}
	}
	for _, r := range runs {
		switch strings.TrimSpace(r) {
		case "table1":
			table1(l)
		case "table2":
			table2(l)
		case "table3":
			table3(l)
		case "table4":
			table4(l)
		case "table5":
			table5(l)
		case "fig2":
			fig2(l)
		case "appendix":
			appendix(l)
		case "multidist":
			multidist(l)
		case "hybrid":
			hybrid(l)
		case "adaptive":
			adaptiveExp(l)
		case "sweep":
			sweepExp(l)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", r)
			os.Exit(2)
		}
	}
}
