package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"optirand"
	"optirand/internal/dist"
	"optirand/internal/engine"
)

var (
	flagSweepbench = flag.Bool("sweepbench", false, "benchmark materialized vs streamed sweep generation memory and journal resume overhead, write a JSON summary")
	flagSweepOut   = flag.String("sweepout", "BENCH_sweep.json", "sweepbench: summary output path")
	flagSweepSizes = flag.String("sweepsizes", "10000,100000,1000000", "sweepbench: comma-separated grid sizes (tasks) for the generation-memory measurement")
	flagSweepN     = flag.Int("sweepn", 256, "sweepbench: patterns per campaign in the execution and resume measurements")
	flagSweepReps  = flag.Int("sweepreps", 16, "sweepbench: seeds per cell of the execution and resume grid")
)

// sweepGridPoint is the generation-memory record of one grid size:
// what it costs to hold the whole task slice versus walking the same
// grid through Sweep.EachTask with nothing retained.
type sweepGridPoint struct {
	Tasks int `json:"tasks"`
	// MaterializedBytes is the heap growth retained while the
	// Tasks() slice is alive; MaterializedAllocs the allocations the
	// expansion performed.
	MaterializedBytes   uint64  `json:"materialized_bytes"`
	MaterializedAllocs  uint64  `json:"materialized_allocs"`
	BytesPerTask        float64 `json:"materialized_bytes_per_task"`
	StreamedBytes       uint64  `json:"streamed_bytes"`
	StreamedAllocs      uint64  `json:"streamed_allocs"`
	RetainedBytesRatio  float64 `json:"retained_bytes_ratio"` // materialized / max(streamed, 1)
	StreamedTasksViewed int     `json:"streamed_tasks_viewed"`
}

// sweepResume is the journal-overhead record: the same grid run cold
// with a journal attached (every result appended as it lands), then
// replayed entirely from that journal by a fresh run.
type sweepResume struct {
	Tasks         int     `json:"tasks"`
	Patterns      int     `json:"patterns"`
	BareSeconds   float64 `json:"bare_seconds"`   // no journal
	ColdSeconds   float64 `json:"cold_seconds"`   // journal attached, all misses
	WriteOverhead float64 `json:"write_overhead"` // cold / bare
	ReplaySeconds float64 `json:"replay_seconds"` // all journal hits, zero executions
	ReplaySpeedup float64 `json:"replay_speedup"` // cold / replay
	JournalBytes  int64   `json:"journal_bytes"`
	BytesPerEntry float64 `json:"journal_bytes_per_entry"`
	Identical     bool    `json:"identical_results"` // bare == cold == replay, byte for byte
}

// sweepSummary is the BENCH_sweep.json schema.
type sweepSummary struct {
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"numcpu"`
	Seed       uint64           `json:"seed"`
	Grid       []sweepGridPoint `json:"generation"`
	Resume     sweepResume      `json:"resume"`
}

// sweepGenGrid builds a one-circuit sweep whose Repetitions dial
// expands it to exactly n tasks — the million-point shape the
// streaming seam exists for.
func sweepGenGrid(seed uint64, n int) *engine.Sweep {
	b, _ := optirand.BenchmarkByName("c432")
	c := b.Build()
	return &engine.Sweep{
		BaseSeed:    seed,
		Repetitions: n,
		Patterns:    64,
		Circuits: []engine.SweepCircuit{{
			Name:    "c432",
			Circuit: c,
			Faults:  optirand.CollapsedFaults(c),
			Weightings: []engine.Weighting{
				{Name: "conventional", Sets: [][]float64{optirand.UniformWeights(c)}},
			},
		}},
	}
}

// heapDelta runs fn between two GC-settled heap readings and reports
// the retained-byte growth and the allocation count fn performed.
func heapDelta(fn func()) (retained uint64, allocs uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		retained = after.HeapAlloc - before.HeapAlloc
	}
	return retained, after.Mallocs - before.Mallocs
}

// sweepbench measures the two costs the streaming-sweep work targets:
// the memory a materialized task slice pins versus the EachTask
// generator (per grid size), and what the sweep journal costs to
// write and buys on resume.
func sweepbench() {
	const seed = 1987
	summary := sweepSummary{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
	}

	// Generation memory: materialize the grid and hold it, then walk
	// the identical grid through the generator retaining nothing.
	for _, field := range strings.Split(*flagSweepSizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "benchgen: bad -sweepsizes entry %q\n", field)
			os.Exit(2)
		}
		sweep := sweepGenGrid(seed, n)

		var tasks []*engine.Task
		matBytes, matAllocs := heapDelta(func() { tasks = sweep.Tasks() })
		if len(tasks) != n {
			fmt.Fprintf(os.Stderr, "benchgen: grid expanded to %d tasks, want %d\n", len(tasks), n)
			os.Exit(1)
		}
		tasks = nil

		viewed := 0
		strBytes, strAllocs := heapDelta(func() {
			if err := sweep.EachTask(func(i int, t *engine.Task) error {
				viewed++
				return nil
			}); err != nil {
				fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
				os.Exit(1)
			}
		})

		ratio := float64(matBytes)
		if strBytes > 0 {
			ratio = float64(matBytes) / float64(strBytes)
		}
		summary.Grid = append(summary.Grid, sweepGridPoint{
			Tasks:               n,
			MaterializedBytes:   matBytes,
			MaterializedAllocs:  matAllocs,
			BytesPerTask:        float64(matBytes) / float64(n),
			StreamedBytes:       strBytes,
			StreamedAllocs:      strAllocs,
			RetainedBytesRatio:  ratio,
			StreamedTasksViewed: viewed,
		})
	}

	// Resume overhead: a modest grid run three ways — bare, cold with
	// a journal attached, and replayed entirely from that journal.
	ctx := context.Background()
	backend := engine.Local{Workers: runtime.GOMAXPROCS(0)}
	grid := sweepGenGrid(seed, *flagSweepReps)
	grid.Patterns = *flagSweepN
	nTasks := grid.NumTasks()

	collect := func(opts dist.SourceOptions) ([]*optirand.CampaignResult, time.Duration) {
		out := make([]*optirand.CampaignResult, nTasks)
		start := time.Now()
		err := dist.RunSource(ctx, backend, grid, opts, func(i int, r engine.TaskResult) {
			out[i] = r.Campaign
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: sweep: %v\n", err)
			os.Exit(1)
		}
		return out, time.Since(start)
	}

	bare, bareDur := collect(dist.SourceOptions{})

	dir, err := os.MkdirTemp("", "sweepbench-journal-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	jpath := filepath.Join(dir, "sweep.journal")

	openJournal := func() *dist.Journal {
		j, err := dist.OpenJournal(jpath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		return j
	}

	j := openJournal()
	cold, coldDur := collect(dist.SourceOptions{Journal: j})
	j.Close()
	fi, err := os.Stat(jpath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}

	j = openJournal()
	replay, replayDur := collect(dist.SourceOptions{Journal: j})
	j.Close()

	summary.Resume = sweepResume{
		Tasks:         nTasks,
		Patterns:      *flagSweepN,
		BareSeconds:   bareDur.Seconds(),
		ColdSeconds:   coldDur.Seconds(),
		WriteOverhead: coldDur.Seconds() / bareDur.Seconds(),
		ReplaySeconds: replayDur.Seconds(),
		ReplaySpeedup: coldDur.Seconds() / replayDur.Seconds(),
		JournalBytes:  fi.Size(),
		BytesPerEntry: float64(fi.Size()) / float64(nTasks),
		Identical:     reflect.DeepEqual(bare, cold) && reflect.DeepEqual(bare, replay),
	}

	data, err := json.MarshalIndent(&summary, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*flagSweepOut, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("sweepbench: wrote %s (%d grid sizes; resume replay %0.1fx over cold, journal %s)\n",
		*flagSweepOut, len(summary.Grid), summary.Resume.ReplaySpeedup, byteCount(fi.Size()))
}

// byteCount renders n in binary units.
func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%0.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%0.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
