package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/prng"
	"optirand/internal/report"
	"optirand/internal/sim"
)

var (
	flagSimbench = flag.Bool("simbench", false, "benchmark the compiled fault-simulation kernel vs the frozen pre-compile kernel, write a JSON summary")
	flagSimOut   = flag.String("simout", "BENCH_sim.json", "simbench: summary output path")
	flagSimCirc  = flag.String("simcircuits", "c2670,c7552", "simbench: comma-separated circuits (default: the chain-heavy random-pattern-resistant pair, where the compiled kernel's gain is largest; fanout-mesh circuits like c6288 sit nearer 1.2x)")
	flagSimN     = flag.Int("simn", 2048, "simbench: patterns per campaign measurement")
	flagSimMinMS = flag.Int("simminms", 300, "simbench: minimum measured time per configuration (ms)")
)

// simCircuit is the simbench record of one circuit.
type simCircuit struct {
	Name   string `json:"name"`
	Gates  int    `json:"gates"`
	Faults int    `json:"faults"`
	// DetectWordsPerSec is the compiled kernel's single-thread
	// DetectWord throughput: full collapsed-fault-list passes against
	// one fixed 64-pattern batch, counted as fault evaluations per
	// second. LegacyDetectWordsPerSec is the identical measurement on
	// the frozen pre-PR kernel; Speedup is their ratio.
	DetectWordsPerSec       float64 `json:"detect_words_per_sec"`
	LegacyDetectWordsPerSec float64 `json:"legacy_detect_words_per_sec"`
	Speedup                 float64 `json:"speedup_vs_legacy"`
	// CampaignPatternsPerSec is end-to-end serial campaign throughput
	// (good machine + detection + fault dropping) in patterns/sec.
	CampaignPatternsPerSec float64 `json:"campaign_patterns_per_sec"`
	// AllocsPerDetect / AllocsPerRun are steady-state allocations per
	// DetectWord call and per good-machine Run (must be 0).
	AllocsPerDetect float64 `json:"allocs_per_detect"`
	AllocsPerRun    float64 `json:"allocs_per_run"`
	// PatternShardsIdentical / SharedGoodIdentical report that the
	// pattern-range-sharded and shared-good-machine campaigns
	// reproduced the serial campaign bit for bit.
	PatternShardsIdentical bool `json:"pattern_shards_identical"`
	SharedGoodIdentical    bool `json:"shared_goodmachine_identical"`
}

// simSummary is the BENCH_sim.json schema.
type simSummary struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numcpu"`
	Seed       uint64       `json:"seed"`
	Patterns   int          `json:"patterns"`
	Circuits   []simCircuit `json:"circuits"`
}

// simCampaignsEqual is campaignsEqual over the internal result type.
func simCampaignsEqual(a, b *sim.CampaignResult) bool {
	if a.TotalFaults != b.TotalFaults || a.Detected != b.Detected || a.Patterns != b.Patterns {
		return false
	}
	for i := range a.FirstDetected {
		if a.FirstDetected[i] != b.FirstDetected[i] {
			return false
		}
	}
	if len(a.Curve) != len(b.Curve) {
		return false
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			return false
		}
	}
	return true
}

// simbench measures the compiled kernel against the retained pre-PR
// kernel and seeds the simulation performance trajectory
// (BENCH_sim.json). All measurements are single-thread by
// construction (one simulator, one goroutine); the equivalence flags
// double as an end-to-end smoke test of the new campaign modes.
func simbench() {
	const seed = 1987
	minTime := time.Duration(*flagSimMinMS) * time.Millisecond
	summary := simSummary{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		Patterns:   *flagSimN,
	}
	t := report.NewTable("Fault-simulation kernel (compiled vs pre-PR legacy, single thread)",
		"Circuit", "Faults", "Compiled f-evals/s", "Legacy f-evals/s", "Speedup",
		"Campaign pat/s", "Allocs/op", "Shards==serial", "SharedGM==serial")

	for _, name := range strings.Split(*flagSimCirc, ",") {
		name = strings.TrimSpace(name)
		b, ok := gen.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgen: unknown circuit %q (try -list)\n", name)
			os.Exit(2)
		}
		c := b.Build()
		faults := fault.New(c).Reps
		weights := make([]float64, c.NumInputs())
		for i := range weights {
			weights[i] = 0.5
		}

		// One fixed batch for the kernel micro-measurement.
		rng := prng.New(seed)
		words := make([]uint64, c.NumInputs())
		for i := range words {
			words[i] = rng.Uint64()
		}
		s := sim.NewSimulator(c)
		fs := sim.NewFaultSimulator(s)
		s.SetInputs(words)
		s.Run()
		lk := sim.NewLegacyKernel(c)
		lk.SetInputs(words)
		lk.Run()

		newT := measure(minTime, func() {
			for _, f := range faults {
				fs.DetectWord(f)
			}
		})
		oldT := measure(minTime, func() {
			for _, f := range faults {
				lk.DetectWord(f)
			}
		})

		sc := simCircuit{
			Name:                    name,
			Gates:                   c.NumGates(),
			Faults:                  len(faults),
			DetectWordsPerSec:       float64(len(faults)) / newT.Seconds(),
			LegacyDetectWordsPerSec: float64(len(faults)) / oldT.Seconds(),
			Speedup:                 oldT.Seconds() / newT.Seconds(),
		}

		// Steady-state allocation guards (mirrors the sim test suite).
		pick := faults[len(faults)/2]
		sc.AllocsPerDetect = testing.AllocsPerRun(100, func() { fs.DetectWord(pick) })
		sc.AllocsPerRun = testing.AllocsPerRun(100, func() {
			s.SetInputs(words)
			s.Run()
		})

		// End-to-end serial campaign throughput, plus the equivalence
		// flags for the two new scheduling modes.
		var ref *sim.CampaignResult
		d := measure(minTime, func() {
			ref = sim.RunCampaign(c, faults, weights, *flagSimN, seed, 0)
		})
		sc.CampaignPatternsPerSec = float64(*flagSimN) / d.Seconds()
		shards := sim.RunCampaignPatternShards(c, faults, weights, *flagSimN, seed, 0, 4)
		sc.PatternShardsIdentical = simCampaignsEqual(ref, shards)
		shared := sim.RunCampaignConfig(c, faults, [][]float64{weights}, seed, sim.CampaignConfig{
			Patterns: *flagSimN, Workers: 2, GoodMachine: sim.GoodMachineShared,
		})
		sc.SharedGoodIdentical = simCampaignsEqual(ref, shared)

		summary.Circuits = append(summary.Circuits, sc)
		t.Add(name, fmt.Sprint(sc.Faults),
			report.Sci(sc.DetectWordsPerSec), report.Sci(sc.LegacyDetectWordsPerSec),
			fmt.Sprintf("%.2fx", sc.Speedup), report.Sci(sc.CampaignPatternsPerSec),
			fmt.Sprintf("%.0f/%.0f", sc.AllocsPerDetect, sc.AllocsPerRun),
			fmt.Sprint(sc.PatternShardsIdentical), fmt.Sprint(sc.SharedGoodIdentical))
	}
	fmt.Print(t)

	data, err := json.MarshalIndent(&summary, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*flagSimOut, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *flagSimOut)
}
