package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/prng"
	"optirand/internal/report"
	"optirand/internal/sim"
)

var (
	flagSimbench = flag.Bool("simbench", false, "benchmark the wide-word fault-simulation kernels vs the frozen pre-compile kernel, write a JSON summary")
	flagSimOut   = flag.String("simout", "BENCH_sim.json", "simbench: summary output path")
	flagSimCirc  = flag.String("simcircuits", "c2670,c7552,c499,c1355", "simbench: comma-separated circuits (chain-heavy random-pattern-resistant pair plus the XOR-dominated parity meshes where the diff-word path engages)")
	flagSimN     = flag.Int("simn", 2048, "simbench: patterns per campaign measurement")
	flagSimMinMS = flag.Int("simminms", 300, "simbench: minimum measured time per configuration (ms)")
)

// simCircuit is the simbench record of one circuit. Kernel throughput
// is counted in fault-words per second: one fault-word is one
// 64-pattern detection mask for one fault, so a W-lane DetectWords
// call contributes W fault-words and the widths are directly
// comparable with the one-word legacy and narrow kernels.
type simCircuit struct {
	Name   string `json:"name"`
	Gates  int    `json:"gates"`
	Faults int    `json:"faults"`
	// LanesChosen is the lane width the compiler picked for this
	// circuit (chooseLanes); the W4/W8 columns force the width.
	LanesChosen             int     `json:"lanes_chosen"`
	DetectWordsPerSec       float64 `json:"detect_words_per_sec"` // wide kernel at the chosen width
	LegacyDetectWordsPerSec float64 `json:"legacy_detect_words_per_sec"`
	W1DetectWordsPerSec     float64 `json:"w1_detect_words_per_sec"` // narrow compiled kernel
	W4DetectWordsPerSec     float64 `json:"w4_detect_words_per_sec"`
	W8DetectWordsPerSec     float64 `json:"w8_detect_words_per_sec"`
	Speedup                 float64 `json:"speedup_vs_legacy"` // chosen width vs legacy
	// CampaignPatternsPerSec is end-to-end serial campaign throughput
	// (good machine + detection + fault dropping) in patterns/sec,
	// running on the wide-group batch loop.
	CampaignPatternsPerSec float64 `json:"campaign_patterns_per_sec"`
	// Steady-state allocations (all must be 0): per narrow
	// DetectWord/Run and per wide DetectWords/RunWide call.
	AllocsPerDetect     float64 `json:"allocs_per_detect"`
	AllocsPerRun        float64 `json:"allocs_per_run"`
	AllocsPerDetectWide float64 `json:"allocs_per_detect_wide"`
	AllocsPerRunWide    float64 `json:"allocs_per_run_wide"`
	// WideIdentical reports that DetectWords reproduced the legacy
	// kernel's mask on every lane, for every fault, at every width.
	WideIdentical bool `json:"wide_identical"`
	// PatternShardsIdentical / SharedGoodIdentical report that the
	// pattern-range-sharded and shared-good-machine campaigns
	// reproduced the serial campaign bit for bit.
	PatternShardsIdentical bool `json:"pattern_shards_identical"`
	SharedGoodIdentical    bool `json:"shared_goodmachine_identical"`
}

// simSummary is the BENCH_sim.json schema.
type simSummary struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Seed       uint64 `json:"seed"`
	Patterns   int    `json:"patterns"`
	// AggregateSpeedup is the geometric mean of the per-circuit
	// chosen-width speedups over the legacy kernel.
	AggregateSpeedup float64      `json:"aggregate_speedup_vs_legacy"`
	Circuits         []simCircuit `json:"circuits"`
}

// simCampaignsEqual is campaignsEqual over the internal result type.
func simCampaignsEqual(a, b *sim.CampaignResult) bool {
	if a.TotalFaults != b.TotalFaults || a.Detected != b.Detected || a.Patterns != b.Patterns {
		return false
	}
	for i := range a.FirstDetected {
		if a.FirstDetected[i] != b.FirstDetected[i] {
			return false
		}
	}
	if len(a.Curve) != len(b.Curve) {
		return false
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			return false
		}
	}
	return true
}

// wideGroup loads one fixed W-lane pattern group and runs the good
// machine; lane 0 carries words so the W=1-comparable batch is lane 0.
func wideGroup(s *sim.Simulator, rng *prng.SplitMix64, nIn int) {
	w := s.Lanes()
	words := make([]uint64, nIn)
	for l := 0; l < w; l++ {
		for i := range words {
			words[i] = rng.Uint64()
		}
		s.SetInputsLane(l, words)
	}
	s.RunWide()
}

// measureWide times full fault-list DetectWords passes on a prepared
// wide simulator and returns fault-words per second.
func measureWide(minTime time.Duration, fs *sim.FaultSimulator, faults []fault.Fault, w int) float64 {
	var det [8]uint64
	d := measure(minTime, func() {
		for _, f := range faults {
			fs.DetectWords(f, det[:])
		}
	})
	return float64(len(faults)*w) / d.Seconds()
}

// checkWideIdentical verifies DetectWords ≡ legacy DetectWord on every
// lane for every fault over nGroups random groups.
func checkWideIdentical(c *gen.Benchmark, faults []fault.Fault, s *sim.Simulator, lk *sim.LegacyKernel, seed uint64, nGroups int) bool {
	fs := sim.NewFaultSimulator(s)
	w := s.Lanes()
	rng := prng.New(seed)
	nIn := s.Circuit().NumInputs()
	words := make([]uint64, nIn)
	group := make([][]uint64, w)
	for l := range group {
		group[l] = make([]uint64, nIn)
	}
	var det [8]uint64
	for gi := 0; gi < nGroups; gi++ {
		for l := 0; l < w; l++ {
			for i := range group[l] {
				group[l][i] = rng.Uint64()
			}
			s.SetInputsLane(l, group[l])
		}
		s.RunWide()
		for l := 0; l < w; l++ {
			copy(words, group[l])
			lk.SetInputs(words)
			lk.Run()
			for _, f := range faults {
				fs.DetectWords(f, det[:])
				if det[l] != lk.DetectWord(f) {
					return false
				}
			}
		}
	}
	return true
}

// simbench measures the wide-word kernels against the retained pre-PR
// kernel at every lane width and seeds the simulation performance
// trajectory (BENCH_sim.json). All measurements are single-thread by
// construction (one simulator, one goroutine); the equivalence flags
// double as an end-to-end smoke test, and any false flag makes the
// process exit non-zero after the summary is written so CI fails
// while still uploading the artifact.
func simbench() {
	const seed = 1987
	minTime := time.Duration(*flagSimMinMS) * time.Millisecond
	summary := simSummary{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		Patterns:   *flagSimN,
	}
	t := report.NewTable("Fault-simulation kernels (wide-word vs pre-compile legacy, single thread)",
		"Circuit", "Faults", "W", "Wide f-words/s", "Legacy f-words/s", "W1/W4/W8 f-words/s",
		"Speedup", "Campaign pat/s", "Allocs", "Wide==legacy", "Shards==serial", "SharedGM==serial")

	logSpeedups := 0.0
	allIdentical := true
	for _, name := range strings.Split(*flagSimCirc, ",") {
		name = strings.TrimSpace(name)
		b, ok := gen.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgen: unknown circuit %q (try -list)\n", name)
			os.Exit(2)
		}
		c := b.Build()
		faults := fault.New(c).Reps
		weights := make([]float64, c.NumInputs())
		for i := range weights {
			weights[i] = 0.5
		}

		// One fixed batch for the one-word kernels (legacy, narrow).
		rng := prng.New(seed)
		words := make([]uint64, c.NumInputs())
		for i := range words {
			words[i] = rng.Uint64()
		}
		s := sim.NewSimulator(c)
		fs := sim.NewFaultSimulator(s)
		s.SetInputs(words)
		s.Run()
		lk := sim.NewLegacyKernel(c)
		lk.SetInputs(words)
		lk.Run()

		w1 := float64(len(faults)) / measure(minTime, func() {
			for _, f := range faults {
				fs.DetectWord(f)
			}
		}).Seconds()
		legacy := float64(len(faults)) / measure(minTime, func() {
			for _, f := range faults {
				lk.DetectWord(f)
			}
		}).Seconds()

		sc := simCircuit{
			Name:                    name,
			Gates:                   c.NumGates(),
			Faults:                  len(faults),
			LanesChosen:             s.Lanes(),
			LegacyDetectWordsPerSec: legacy,
			W1DetectWordsPerSec:     w1,
			WideIdentical:           true,
		}

		// Wide kernels at both forced widths over one fixed group.
		perW := map[int]float64{}
		for _, lanes := range []int{4, 8} {
			ws := sim.NewSimulatorLanes(c, lanes)
			wideGroup(ws, prng.New(seed), c.NumInputs())
			wfs := sim.NewFaultSimulator(ws)
			perW[lanes] = measureWide(minTime, wfs, faults, lanes)
			if !checkWideIdentical(&b, faults, ws, lk, seed+uint64(lanes), 2) {
				sc.WideIdentical = false
			}
			// Restore the one-word kernels' batch on the legacy
			// kernel for the next width's check.
			lk.SetInputs(words)
			lk.Run()
		}
		sc.W4DetectWordsPerSec = perW[4]
		sc.W8DetectWordsPerSec = perW[8]
		sc.DetectWordsPerSec = perW[sc.LanesChosen]
		sc.Speedup = sc.DetectWordsPerSec / legacy
		logSpeedups += math.Log(sc.Speedup)

		// Steady-state allocation guards (mirror the sim test suite).
		pick := faults[len(faults)/2]
		sc.AllocsPerDetect = testing.AllocsPerRun(100, func() { fs.DetectWord(pick) })
		sc.AllocsPerRun = testing.AllocsPerRun(100, func() {
			s.SetInputs(words)
			s.Run()
		})
		var det [8]uint64
		ws := sim.NewSimulatorLanes(c, sc.LanesChosen)
		wideGroup(ws, prng.New(seed), c.NumInputs())
		wfs := sim.NewFaultSimulator(ws)
		wfs.DetectWords(pick, det[:]) // warm lane state
		sc.AllocsPerDetectWide = testing.AllocsPerRun(100, func() { wfs.DetectWords(pick, det[:]) })
		sc.AllocsPerRunWide = testing.AllocsPerRun(100, func() { ws.RunWide() })

		// End-to-end serial campaign throughput (wide-group batch
		// loop), plus the equivalence flags for the scheduling modes.
		var ref *sim.CampaignResult
		d := measure(minTime, func() {
			ref = sim.RunCampaign(c, faults, weights, *flagSimN, seed, 0)
		})
		sc.CampaignPatternsPerSec = float64(*flagSimN) / d.Seconds()
		shards := sim.RunCampaignPatternShards(c, faults, weights, *flagSimN, seed, 0, 4)
		sc.PatternShardsIdentical = simCampaignsEqual(ref, shards)
		shared := sim.RunCampaignConfig(c, faults, [][]float64{weights}, seed, sim.CampaignConfig{
			Patterns: *flagSimN, Workers: 2, GoodMachine: sim.GoodMachineShared,
		})
		sc.SharedGoodIdentical = simCampaignsEqual(ref, shared)
		allIdentical = allIdentical && sc.WideIdentical && sc.PatternShardsIdentical && sc.SharedGoodIdentical

		summary.Circuits = append(summary.Circuits, sc)
		t.Add(name, fmt.Sprint(sc.Faults), fmt.Sprint(sc.LanesChosen),
			report.Sci(sc.DetectWordsPerSec), report.Sci(sc.LegacyDetectWordsPerSec),
			fmt.Sprintf("%s/%s/%s", report.Sci(w1), report.Sci(perW[4]), report.Sci(perW[8])),
			fmt.Sprintf("%.2fx", sc.Speedup), report.Sci(sc.CampaignPatternsPerSec),
			fmt.Sprintf("%.0f/%.0f/%.0f/%.0f", sc.AllocsPerDetect, sc.AllocsPerRun,
				sc.AllocsPerDetectWide, sc.AllocsPerRunWide),
			fmt.Sprint(sc.WideIdentical),
			fmt.Sprint(sc.PatternShardsIdentical), fmt.Sprint(sc.SharedGoodIdentical))
	}
	if n := len(summary.Circuits); n > 0 {
		summary.AggregateSpeedup = math.Exp(logSpeedups / float64(n))
	}
	fmt.Print(t)
	fmt.Printf("aggregate speedup vs legacy (geomean): %.2fx\n", summary.AggregateSpeedup)

	data, err := json.MarshalIndent(&summary, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*flagSimOut, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *flagSimOut)
	if !allIdentical {
		fmt.Fprintln(os.Stderr, "benchgen: equivalence flag false — kernels disagree; failing")
		os.Exit(1)
	}
}
