// Command benchgen emits the built-in evaluation circuits as .bench
// netlists and benchmarks the parallel campaign engine.
//
// Usage:
//
//	benchgen -circuit s1                 # print S1 to stdout
//	benchgen -circuit c7552 -o c7552.bench
//	benchgen -list                       # list available circuits
//	benchgen -stats                      # structural statistics table
//	benchgen -parbench                   # serial-vs-parallel campaign
//	                                     # throughput -> BENCH_parallel.json
//	benchgen -servebench                 # optirandd service throughput and
//	                                     # cache-hit latency -> BENCH_service.json
//	benchgen -internbench                # inline vs content-addressed task
//	                                     # request bytes -> BENCH_intern.json
//	benchgen -simbench                   # compiled vs pre-PR fault-simulation
//	                                     # kernel throughput -> BENCH_sim.json
//	benchgen -fedbench                   # federated daemon tree: 1-leaf vs
//	                                     # N-leaf throughput, route-affinity
//	                                     # cache hits, leaf-kill requeue
//	                                     # -> BENCH_fed.json
//	benchgen -adaptbench                 # closed-loop (adaptive) campaigns vs
//	                                     # the static optimum: patterns to
//	                                     # coverage targets, re-weight overhead
//	                                     # -> BENCH_adapt.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"optirand"
	"optirand/internal/gen"
	"optirand/internal/report"
)

var (
	flagCircuit  = flag.String("circuit", "", "benchmark name (see -list)")
	flagOut      = flag.String("o", "", "output file (default stdout)")
	flagList     = flag.Bool("list", false, "list available circuits")
	flagStats    = flag.Bool("stats", false, "print structural statistics for all circuits")
	flagParbench = flag.Bool("parbench", false, "benchmark serial vs parallel campaigns, write a JSON summary")
	flagParOut   = flag.String("parout", "BENCH_parallel.json", "parbench: summary output path")
	flagParCirc  = flag.String("parcircuits", "c6288,s2,c7552", "parbench: comma-separated circuits")
	flagParN     = flag.Int("parn", 4096, "parbench: patterns per campaign")
	flagParMinMS = flag.Int("parminms", 300, "parbench: minimum measured time per configuration (ms)")
)

// parRun is one measured worker configuration of parbench.
type parRun struct {
	Workers       int     `json:"workers"`
	Seconds       float64 `json:"seconds"` // per campaign
	PatternFaults float64 `json:"pattern_faults_per_sec"`
	SpeedupVs1    float64 `json:"speedup_vs_serial"`
	Identical     bool    `json:"identical_to_serial"`
}

// parCircuit is the parbench record of one circuit.
type parCircuit struct {
	Name     string   `json:"name"`
	Gates    int      `json:"gates"`
	Faults   int      `json:"faults"`
	Patterns int      `json:"patterns"`
	Coverage float64  `json:"coverage"`
	Runs     []parRun `json:"runs"`
}

// parSummary is the BENCH_parallel.json schema.
type parSummary struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numcpu"`
	Seed       uint64       `json:"seed"`
	Circuits   []parCircuit `json:"circuits"`
}

// measure times fn (one full campaign) repeatedly until the total
// exceeds minTime, returning the best single-run time — the standard
// guard against scheduler noise on loaded machines.
func measure(minTime time.Duration, fn func()) time.Duration {
	best := time.Duration(0)
	total := time.Duration(0)
	for total < minTime {
		start := time.Now()
		fn()
		d := time.Since(start)
		total += d
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// parbench measures serial vs fault-sharded-parallel campaign
// throughput and writes the machine-readable summary the perf tooling
// consumes.
func parbench() {
	const seed = 1987
	minTime := time.Duration(*flagParMinMS) * time.Millisecond
	var workerGrid []int
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		dup := false
		for _, seen := range workerGrid {
			dup = dup || seen == w
		}
		if !dup {
			workerGrid = append(workerGrid, w)
		}
	}

	summary := parSummary{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
	}
	t := report.NewTable("Parallel campaign throughput (best of repeated runs)",
		"Circuit", "Workers", "Campaign time", "Pattern-faults/s", "Speedup", "Identical")
	for _, name := range strings.Split(*flagParCirc, ",") {
		name = strings.TrimSpace(name)
		b, ok := optirand.BenchmarkByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgen: unknown circuit %q (try -list)\n", name)
			os.Exit(2)
		}
		c := b.Build()
		faults := optirand.CollapsedFaults(c)
		weights := optirand.UniformWeights(c)
		ref := optirand.SimulateRandomTest(c, faults, weights, *flagParN, seed, 0)

		pc := parCircuit{
			Name:     name,
			Gates:    c.NumGates(),
			Faults:   len(faults),
			Patterns: *flagParN,
			Coverage: ref.Coverage(),
		}
		var serial time.Duration
		for _, w := range workerGrid {
			var last *optirand.CampaignResult
			d := measure(minTime, func() {
				last = optirand.SimulateRandomTestWorkers(c, faults, weights, *flagParN, seed, 0, w)
			})
			if w == 1 {
				serial = d
			}
			identical := campaignsEqual(ref, last)
			run := parRun{
				Workers:       w,
				Seconds:       d.Seconds(),
				PatternFaults: float64(*flagParN) * float64(len(faults)) / d.Seconds(),
				SpeedupVs1:    serial.Seconds() / d.Seconds(),
				Identical:     identical,
			}
			pc.Runs = append(pc.Runs, run)
			t.Add(name, fmt.Sprint(w), d.Round(time.Microsecond).String(),
				report.Sci(run.PatternFaults), fmt.Sprintf("%.2fx", run.SpeedupVs1),
				fmt.Sprint(identical))
		}
		summary.Circuits = append(summary.Circuits, pc)
	}
	fmt.Print(t)

	data, err := json.MarshalIndent(&summary, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*flagParOut, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *flagParOut)
}

// campaignsEqual reports full equality of two campaign results
// (coverage, first-detection indices, curve).
func campaignsEqual(a, b *optirand.CampaignResult) bool {
	if a.TotalFaults != b.TotalFaults || a.Detected != b.Detected || a.Patterns != b.Patterns {
		return false
	}
	for i := range a.FirstDetected {
		if a.FirstDetected[i] != b.FirstDetected[i] {
			return false
		}
	}
	if len(a.Curve) != len(b.Curve) {
		return false
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			return false
		}
	}
	return true
}

func main() {
	flag.Parse()
	switch {
	case *flagParbench:
		parbench()
	case *flagServebench:
		servebench()
	case *flagInternbench:
		internbench()
	case *flagSimbench:
		simbench()
	case *flagSweepbench:
		sweepbench()
	case *flagFedbench:
		fedbench()
	case *flagAdaptbench:
		adaptbench()
	case *flagList:
		t := report.NewTable("Built-in evaluation circuits", "Name", "Paper", "Description")
		for _, b := range optirand.Benchmarks() {
			t.Add(b.Name, b.PaperName, b.Description)
		}
		fmt.Print(t)
	case *flagStats:
		t := report.NewTable("Structural statistics", "Name", "Inputs", "Outputs", "Gates", "Depth", "Lines", "MaxFanout")
		for _, b := range optirand.Benchmarks() {
			c := b.Build()
			s := c.Stats()
			t.Add(b.Name, fmt.Sprint(s.Inputs), fmt.Sprint(s.Outputs), fmt.Sprint(s.Gates),
				fmt.Sprint(s.Depth), fmt.Sprint(s.Lines), fmt.Sprint(s.FanoutMax))
		}
		fmt.Print(t)
	case *flagCircuit != "":
		b, ok := gen.ByName(*flagCircuit)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgen: unknown circuit %q (try -list)\n", *flagCircuit)
			os.Exit(2)
		}
		out := os.Stdout
		if *flagOut != "" {
			f, err := os.Create(*flagOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := optirand.WriteBench(out, b.Build()); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
