// Command benchgen emits the built-in evaluation circuits as .bench
// netlists.
//
// Usage:
//
//	benchgen -circuit s1                 # print S1 to stdout
//	benchgen -circuit c7552 -o c7552.bench
//	benchgen -list                       # list available circuits
//	benchgen -stats                      # structural statistics table
package main

import (
	"flag"
	"fmt"
	"os"

	"optirand"
	"optirand/internal/gen"
	"optirand/internal/report"
)

var (
	flagCircuit = flag.String("circuit", "", "benchmark name (see -list)")
	flagOut     = flag.String("o", "", "output file (default stdout)")
	flagList    = flag.Bool("list", false, "list available circuits")
	flagStats   = flag.Bool("stats", false, "print structural statistics for all circuits")
)

func main() {
	flag.Parse()
	switch {
	case *flagList:
		t := report.NewTable("Built-in evaluation circuits", "Name", "Paper", "Description")
		for _, b := range optirand.Benchmarks() {
			t.Add(b.Name, b.PaperName, b.Description)
		}
		fmt.Print(t)
	case *flagStats:
		t := report.NewTable("Structural statistics", "Name", "Inputs", "Outputs", "Gates", "Depth", "Lines", "MaxFanout")
		for _, b := range optirand.Benchmarks() {
			c := b.Build()
			s := c.Stats()
			t.Add(b.Name, fmt.Sprint(s.Inputs), fmt.Sprint(s.Outputs), fmt.Sprint(s.Gates),
				fmt.Sprint(s.Depth), fmt.Sprint(s.Lines), fmt.Sprint(s.FanoutMax))
		}
		fmt.Print(t)
	case *flagCircuit != "":
		b, ok := gen.ByName(*flagCircuit)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgen: unknown circuit %q (try -list)\n", *flagCircuit)
			os.Exit(2)
		}
		out := os.Stdout
		if *flagOut != "" {
			f, err := os.Create(*flagOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := optirand.WriteBench(out, b.Build()); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
