package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"

	"optirand"
	"optirand/internal/adapt"
	"optirand/internal/report"
)

var (
	flagAdaptbench = flag.Bool("adaptbench", false, "benchmark closed-loop (adaptive) campaigns vs the static optimized test, write a JSON summary")
	flagAdaptOut   = flag.String("adaptout", "BENCH_adapt.json", "adaptbench: summary output path")
	flagAdaptCirc  = flag.String("adaptcircuits", "s1,c7552", "adaptbench: comma-separated circuits (default: the random-pattern-resistant pair where residual re-optimization pays)")
	flagAdaptN     = flag.Int("adaptn", 0, "adaptbench: pattern budget per campaign (0 = each circuit's evaluation budget)")
)

// adaptTarget compares one coverage target: the pattern count at
// which each campaign first reached it (0 = not reached in budget).
type adaptTarget struct {
	Coverage         float64 `json:"coverage"`
	StaticPatterns   int     `json:"static_patterns"`
	AdaptivePatterns int     `json:"adaptive_patterns"`
	// AdaptiveWin: the adaptive campaign reached the target in
	// strictly fewer patterns than the static optimum (or reached a
	// target the static run never did).
	AdaptiveWin bool `json:"adaptive_win"`
}

// adaptCircuit is the adaptbench record of one circuit. Both
// campaigns start from the same §5-optimized weights and the same
// seed; the adaptive one re-optimizes against the undetected residue
// at every block boundary.
type adaptCircuit struct {
	Name             string        `json:"name"`
	Faults           int           `json:"faults"`
	Budget           int           `json:"budget"`
	StaticCoverage   float64       `json:"static_coverage"`
	AdaptiveCoverage float64       `json:"adaptive_coverage"`
	Rounds           int           `json:"rounds"`
	Reopts           int           `json:"reopts"`
	ReweightMSRound  float64       `json:"reweight_ms_per_round"`
	Deterministic    bool          `json:"deterministic_across_workers"`
	Targets          []adaptTarget `json:"targets"`
}

// adaptSummary is the BENCH_adapt.json schema.
type adaptSummary struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"numcpu"`
	Seed       uint64         `json:"seed"`
	Strategy   string         `json:"strategy"`
	Circuits   []adaptCircuit `json:"circuits"`
}

// curvePatternsTo returns the first curve sample at or above target
// coverage, 0 if the campaign never got there.
func curvePatternsTo(res *optirand.CampaignResult, target float64) int {
	for _, p := range res.Curve {
		if p.Coverage >= target {
			return p.Patterns
		}
	}
	return 0
}

// adaptbench measures test-length reduction of closed-loop campaigns
// against the static optimum at fixed coverage targets, plus the
// re-weighting overhead per round and the determinism of the loop
// across worker counts.
func adaptbench() {
	const seed = 1987
	ctx := context.Background()
	targets := []float64{0.90, 0.95, 0.99}

	serial := optirand.NewRunner(optirand.WithSimWorkers(1))
	defer serial.Close()
	parallel := optirand.NewRunner(
		optirand.WithSimWorkers(runtime.GOMAXPROCS(0)), optirand.WithGoodMachine(optirand.GoodMachineAuto))
	defer parallel.Close()

	summary := adaptSummary{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		Strategy:   "reopt",
	}
	t := report.NewTable("Adaptive vs static campaigns (patterns to coverage; 0 = not reached)",
		"Circuit", "Budget", "Target", "Static", "Adaptive", "Win", "Reweight/round", "Deterministic")
	for _, name := range strings.Split(*flagAdaptCirc, ",") {
		name = strings.TrimSpace(name)
		b, ok := optirand.BenchmarkByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgen: unknown circuit %q (try -list)\n", name)
			os.Exit(2)
		}
		c := b.Build()
		faults := optirand.CollapsedFaults(c)
		budget := *flagAdaptN
		if budget <= 0 {
			budget = b.SimPatterns
		}

		opt, err := serial.Optimize(ctx, optirand.OptimizeSpec{
			Circuit: c, Faults: faults,
			Options: optirand.OptimizeOptions{Quantize: 0.05},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: optimize %s: %v\n", name, err)
			os.Exit(1)
		}
		static := optirand.Weights(opt.Weights)
		adaptive := optirand.Adaptive(static,
			optirand.AdaptiveReopt(),
			optirand.AdaptiveBlock(budget/8),
			optirand.AdaptiveReoptSweeps(2))
		spec := func(src optirand.PatternSource) optirand.CampaignSpec {
			return optirand.CampaignSpec{
				Circuit: c, Faults: faults, Source: src,
				Patterns: budget, Seed: seed, CurveStep: 64,
			}
		}

		staticRes, err := serial.Campaign(ctx, spec(static))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %s static: %v\n", name, err)
			os.Exit(1)
		}
		before := adapt.GlobalStats()
		adaptiveRes, err := serial.Campaign(ctx, spec(adaptive))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %s adaptive: %v\n", name, err)
			os.Exit(1)
		}
		after := adapt.GlobalStats()

		// The same closed loop on a parallel backend must be invisible
		// in the bytes.
		adaptivePar, err := parallel.Campaign(ctx, spec(adaptive))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %s adaptive parallel: %v\n", name, err)
			os.Exit(1)
		}
		deterministic := reflect.DeepEqual(adaptiveRes, adaptivePar)

		info := adaptiveRes.Adaptive
		rounds := after.Rounds - before.Rounds
		reweightMS := 0.0
		if rounds > 0 {
			reweightMS = float64(after.ReweightNS-before.ReweightNS) / 1e6 / float64(rounds)
		}
		ac := adaptCircuit{
			Name:             name,
			Faults:           len(faults),
			Budget:           budget,
			StaticCoverage:   staticRes.Coverage(),
			AdaptiveCoverage: adaptiveRes.Coverage(),
			Rounds:           len(info.Rounds),
			Reopts:           info.Reopts,
			ReweightMSRound:  reweightMS,
			Deterministic:    deterministic,
		}
		for _, target := range targets {
			st := curvePatternsTo(staticRes, target)
			ad := curvePatternsTo(adaptiveRes, target)
			win := ad > 0 && (st == 0 || ad < st)
			ac.Targets = append(ac.Targets, adaptTarget{
				Coverage: target, StaticPatterns: st, AdaptivePatterns: ad, AdaptiveWin: win,
			})
			t.Add(name, report.Count(budget), report.Pct(target),
				report.Count(st), report.Count(ad), fmt.Sprint(win),
				fmt.Sprintf("%.1f ms", reweightMS), fmt.Sprint(deterministic))
		}
		summary.Circuits = append(summary.Circuits, ac)
	}
	fmt.Print(t)

	data, err := json.MarshalIndent(&summary, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*flagAdaptOut, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *flagAdaptOut)
}
