package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"

	"optirand"
	"optirand/internal/dist"
	"optirand/internal/engine"
	"optirand/internal/report"
)

var (
	flagInternbench = flag.Bool("internbench", false, "benchmark circuit interning (inline vs by-ref request bytes), write a JSON summary")
	flagInternOut   = flag.String("internout", "BENCH_intern.json", "internbench: summary output path")
	flagInternCirc  = flag.String("interncircuits", "c880", "internbench: comma-separated circuits")
	flagInternN     = flag.Int("internn", 256, "internbench: patterns per campaign")
	flagInternReps  = flag.Int("internreps", 24, "internbench: seeds per circuit × weighting cell")
)

// internSummary is the BENCH_intern.json schema: the transport-cost
// measurement behind content-addressed circuit interning. Bytes are
// HTTP request bytes (method + URI + body as sent, compression
// included), summed over every request a sweep needs — for the
// interned client that includes the residency probes and blob
// uploads, so the reduction is end-to-end honest.
type internSummary struct {
	GOMAXPROCS           int     `json:"gomaxprocs"`
	Seed                 uint64  `json:"seed"`
	Circuits             string  `json:"circuits"`
	Tasks                int     `json:"tasks"`
	Patterns             int     `json:"patterns"`
	InlineRequests       int     `json:"inline_requests"`
	InlineRequestBytes   int64   `json:"inline_request_bytes"`
	InternedRequests     int     `json:"interned_requests"`
	InternedRequestBytes int64   `json:"interned_request_bytes"`
	Reduction            float64 `json:"reduction"` // inline / interned, first (upload-inclusive) sweep
	WarmRequests         int     `json:"warm_requests"`
	WarmRequestBytes     int64   `json:"warm_request_bytes"`
	WarmReduction        float64 `json:"warm_reduction"` // inline / warm (pure by-ref, steady state)
	IdenticalResults     bool    `json:"identical_results"`
}

// countingTransport counts the bytes of every outgoing request:
// request line plus body as actually sent (so client-side gzip is
// measured, not hidden).
type countingTransport struct {
	base http.RoundTripper

	mu       sync.Mutex
	requests int
	bytes    int64
}

func (t *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := req.ContentLength
	if n < 0 {
		n = 0
	}
	t.mu.Lock()
	t.requests++
	t.bytes += n + int64(len(req.Method)+len(req.URL.RequestURI()))
	t.mu.Unlock()
	return t.base.RoundTrip(req)
}

func (t *countingTransport) snapshot() (int, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requests, t.bytes
}

// internbenchTasks expands the benchmarked circuits into a many-seed
// sweep grid — the workload interning exists for: one circuit and
// fault list shared by every task of its rows.
func internbenchTasks(seed uint64) []*engine.Task {
	sweep := &engine.Sweep{
		BaseSeed:    seed,
		Repetitions: *flagInternReps,
		Patterns:    *flagInternN,
	}
	for _, name := range strings.Split(*flagInternCirc, ",") {
		name = strings.TrimSpace(name)
		b, ok := optirand.BenchmarkByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgen: unknown circuit %q (try -list)\n", name)
			os.Exit(2)
		}
		c := b.Build()
		skewed := make([]float64, c.NumInputs())
		for i := range skewed {
			skewed[i] = 0.1 + 0.8*float64(i)/float64(len(skewed))
		}
		sweep.Circuits = append(sweep.Circuits, engine.SweepCircuit{
			Name:    name,
			Circuit: c,
			Faults:  optirand.CollapsedFaults(c),
			Weightings: []engine.Weighting{
				{Name: "conventional", Sets: [][]float64{optirand.UniformWeights(c)}},
				{Name: "skewed", Sets: [][]float64{skewed}},
			},
		})
	}
	return sweep.Tasks()
}

// internDaemon starts a fresh daemon on a loopback listener and
// returns a byte-counting client for it plus a shutdown func.
func internDaemon(inline bool) (*dist.Client, *countingTransport, func()) {
	srv := dist.NewServer(dist.ServerOptions{Workers: runtime.GOMAXPROCS(0), CacheSize: 4096})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln) //nolint:errcheck // closed on shutdown
	cl := dist.NewClient(ln.Addr().String())
	ct := &countingTransport{base: http.DefaultTransport}
	cl.HTTP.Transport = ct
	cl.DisableIntern = inline
	return cl, ct, func() {
		httpSrv.Close()
		srv.Close()
	}
}

// internbench measures the request bytes a many-seed sweep costs with
// inline tasks versus content-addressed (interned) tasks, cold
// (including the one-time blob negotiation) and warm (pure by-ref) —
// the ~100× transport win the blob store exists for.
func internbench() {
	const seed = 1987
	tasks := internbenchTasks(seed)

	// In-process reference for the identity check.
	ref, err := engine.Run(context.Background(), tasks, runtime.GOMAXPROCS(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}

	// Inline transport: every task carries its circuit and faults.
	inlineCl, inlineCt, stopInline := internDaemon(true)
	inlineRes, _, err := inlineCl.Sweep(context.Background(), tasks)
	stopInline()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: inline sweep: %v\n", err)
		os.Exit(1)
	}
	inlineReqs, inlineBytes := inlineCt.snapshot()

	// Interned transport against a fresh daemon: the first sweep pays
	// the probes and blob uploads, the second is pure by-ref.
	internCl, internCt, stopIntern := internDaemon(false)
	defer stopIntern()
	internRes, _, err := internCl.Sweep(context.Background(), tasks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: interned sweep: %v\n", err)
		os.Exit(1)
	}
	internReqs, internBytes := internCt.snapshot()
	warmRes, _, err := internCl.Sweep(context.Background(), tasks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: warm interned sweep: %v\n", err)
		os.Exit(1)
	}
	warmReqsTotal, warmBytesTotal := internCt.snapshot()
	warmReqs, warmBytes := warmReqsTotal-internReqs, warmBytesTotal-internBytes

	identical := reflect.DeepEqual(inlineRes, internRes) && reflect.DeepEqual(inlineRes, warmRes)
	for i := range ref {
		identical = identical && reflect.DeepEqual(ref[i].Campaign, internRes[i])
	}

	summary := internSummary{
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		Seed:                 seed,
		Circuits:             *flagInternCirc,
		Tasks:                len(tasks),
		Patterns:             *flagInternN,
		InlineRequests:       inlineReqs,
		InlineRequestBytes:   inlineBytes,
		InternedRequests:     internReqs,
		InternedRequestBytes: internBytes,
		Reduction:            float64(inlineBytes) / float64(internBytes),
		WarmRequests:         warmReqs,
		WarmRequestBytes:     warmBytes,
		WarmReduction:        float64(inlineBytes) / float64(warmBytes),
		IdenticalResults:     identical,
	}

	t := report.NewTable("Circuit interning transport cost (request bytes per sweep)",
		"Transport", "Requests", "Bytes", "Reduction")
	t.Add("inline", fmt.Sprint(inlineReqs), fmt.Sprint(inlineBytes), "1.0x")
	t.Add("interned (cold: probes + blob uploads)", fmt.Sprint(internReqs), fmt.Sprint(internBytes),
		fmt.Sprintf("%.1fx", summary.Reduction))
	t.Add("interned (warm: by-ref only)", fmt.Sprint(warmReqs), fmt.Sprint(warmBytes),
		fmt.Sprintf("%.1fx", summary.WarmReduction))
	t.Add("identical results", fmt.Sprint(identical), "", "")
	fmt.Print(t)

	data, err := json.MarshalIndent(&summary, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*flagInternOut, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *flagInternOut)
}
