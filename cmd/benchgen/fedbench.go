package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"reflect"
	"runtime"
	"sync"
	"time"

	"optirand/internal/dist"
	"optirand/internal/engine"
	"optirand/internal/report"
	"optirand/internal/sim"
)

var (
	flagFedbench  = flag.Bool("fedbench", false, "benchmark a federated daemon tree (1 leaf vs N leaves, route affinity, leaf-kill requeue), write a JSON summary")
	flagFedOut    = flag.String("fedout", "BENCH_fed.json", "fedbench: summary output path")
	flagFedLeaves = flag.Int("fedleaves", 3, "fedbench: leaf daemons behind the front")
)

// fedLeafRecord is the per-leaf slice of the tree benchmark.
type fedLeafRecord struct {
	Routed        uint64 `json:"routed"`
	WarmCacheHits uint64 `json:"warm_cache_hits"`
}

// fedSummary is the BENCH_fed.json schema: what a federation front
// buys over a single daemon, and what a leaf death costs.
type fedSummary struct {
	GOMAXPROCS           int             `json:"gomaxprocs"`
	NumCPU               int             `json:"numcpu"`
	Seed                 uint64          `json:"seed"`
	Tasks                int             `json:"tasks"`
	Leaves               int             `json:"leaves"`
	OneLeafColdSeconds   float64         `json:"one_leaf_cold_seconds"`
	TreeColdSeconds      float64         `json:"tree_cold_seconds"`
	TreeSpeedup          float64         `json:"tree_speedup_vs_one_leaf"`
	TreeWarmSeconds      float64         `json:"tree_warm_seconds"`
	RouteAffinityHitRate float64         `json:"route_affinity_hit_rate"`
	PerLeaf              []fedLeafRecord `json:"per_leaf"`
	KillSweepSeconds     float64         `json:"kill_sweep_seconds"`
	ReroutedTasks        uint64          `json:"rerouted_tasks"`
	RequeueRecoveryMS    float64         `json:"requeue_recovery_ms"`
	IdenticalToInProc    bool            `json:"identical_to_inprocess"`
}

// fedDaemon is one loopback daemon of the benchmark tree.
type fedDaemon struct {
	addr    string
	httpSrv *http.Server
	srv     *dist.Server
	once    sync.Once
}

// kill tears the daemon down hard: in-flight connections drop, exactly
// what a crashed leaf looks like to the front.
func (d *fedDaemon) kill() {
	d.once.Do(func() {
		d.httpSrv.Close()
		d.srv.Close()
	})
}

func startFedDaemon(opts dist.ServerOptions) *fedDaemon {
	srv := dist.NewServer(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	d := &fedDaemon{addr: ln.Addr().String(), httpSrv: &http.Server{Handler: srv}, srv: srv}
	go d.httpSrv.Serve(ln) //nolint:errcheck // closed by kill
	return d
}

// fedStatsPage is the slice of /v1/stats the benchmark reads back.
type fedStatsPage struct {
	Cache      *dist.CacheStats      `json:"cache"`
	Federation *dist.FederationStats `json:"federation"`
}

func fetchStats(addr string) *fedStatsPage {
	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: stats %s: %v\n", addr, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	var page fedStatsPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: stats %s: %v\n", addr, err)
		os.Exit(1)
	}
	return &page
}

// startTree brings up nLeaves leaf daemons and a front routing to
// them. The front's own result cache is disabled so every repeated
// task is answered by the leaf the ring maps it to — that is the
// route-affinity effect being measured, not front-side caching.
func startTree(nLeaves int) (front *fedDaemon, leaves []*fedDaemon) {
	leafURLs := make([]string, nLeaves)
	for i := 0; i < nLeaves; i++ {
		l := startFedDaemon(dist.ServerOptions{
			Workers:   runtime.GOMAXPROCS(0),
			CacheSize: 4096,
			Role:      dist.RoleLeaf,
		})
		leaves = append(leaves, l)
		leafURLs[i] = l.addr
	}
	front = startFedDaemon(dist.ServerOptions{
		Workers:        runtime.GOMAXPROCS(0),
		CacheSize:      -1,
		Upstreams:      leafURLs,
		HealthInterval: 100 * time.Millisecond,
		RetryDelay:     5 * time.Millisecond,
	})
	return front, leaves
}

func killTree(front *fedDaemon, leaves []*fedDaemon) {
	front.kill()
	for _, l := range leaves {
		l.kill()
	}
}

// fedbench measures the daemon tree: a 1-leaf baseline sweep, the same
// sweep cold across N leaves, the warm pass (route affinity sends each
// task back to the leaf whose cache holds it), and a sweep with one
// live-routed leaf killed mid-flight (requeue onto survivors, answers
// still byte-identical to in-process execution).
func fedbench() {
	const seed = 1987
	tasks := servebenchTasks(seed)
	ref, err := engine.Run(context.Background(), tasks, runtime.GOMAXPROCS(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	identical := func(results []*sim.CampaignResult) bool {
		ok := len(results) == len(ref)
		for i := range ref {
			ok = ok && reflect.DeepEqual(ref[i].Campaign, results[i])
		}
		return ok
	}
	allIdentical := true

	// 1-leaf baseline: a front routing everything to one leaf.
	front, leaves := startTree(1)
	cl := dist.NewClient(front.addr)
	start := time.Now()
	res, _, err := cl.Sweep(context.Background(), tasks)
	oneLeafCold := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: 1-leaf sweep: %v\n", err)
		os.Exit(1)
	}
	allIdentical = allIdentical && identical(res)
	killTree(front, leaves)

	// N-leaf tree, cold then warm.
	nLeaves := *flagFedLeaves
	front, leaves = startTree(nLeaves)
	cl = dist.NewClient(front.addr)
	start = time.Now()
	res, _, err = cl.Sweep(context.Background(), tasks)
	treeCold := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: tree cold sweep: %v\n", err)
		os.Exit(1)
	}
	allIdentical = allIdentical && identical(res)
	coldHits := make([]uint64, nLeaves)
	for i, l := range leaves {
		if s := fetchStats(l.addr); s.Cache != nil {
			coldHits[i] = s.Cache.Hits
		}
	}

	start = time.Now()
	res, _, err = cl.Sweep(context.Background(), tasks)
	treeWarm := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: tree warm sweep: %v\n", err)
		os.Exit(1)
	}
	allIdentical = allIdentical && identical(res)

	var perLeaf []fedLeafRecord
	var warmHits uint64
	frontStats := fetchStats(front.addr)
	for i, l := range leaves {
		var rec fedLeafRecord
		if s := fetchStats(l.addr); s.Cache != nil {
			rec.WarmCacheHits = s.Cache.Hits - coldHits[i]
		}
		if frontStats.Federation != nil && i < len(frontStats.Federation.PerLeaf) {
			rec.Routed = frontStats.Federation.PerLeaf[i].Routed
		}
		warmHits += rec.WarmCacheHits
		perLeaf = append(perLeaf, rec)
	}
	killTree(front, leaves)

	// Leaf kill mid-sweep: fresh cold tree, kill a leaf that has
	// already been routed work once results start arriving, and let
	// the front requeue its in-flight tasks onto the survivors.
	front, leaves = startTree(nLeaves)
	cl = dist.NewClient(front.addr)
	killRes := make([]*sim.CampaignResult, len(tasks))
	var (
		killTime    time.Time
		recoveredAt time.Time
		done        int
	)
	start = time.Now()
	_, err = cl.SweepEach(context.Background(), tasks, func(i int, r *sim.CampaignResult, _ bool, _ time.Duration) {
		killRes[i] = r
		done++
		if !killTime.IsZero() && recoveredAt.IsZero() {
			recoveredAt = time.Now()
		}
		if killTime.IsZero() && done >= 1 {
			// Pick a victim the ring has actually routed work to.
			if s := fetchStats(front.addr); s.Federation != nil {
				for j, ls := range s.Federation.PerLeaf {
					if ls.Alive && ls.Routed > 0 {
						leaves[j].kill()
						killTime = time.Now()
						break
					}
				}
			}
		}
	})
	killSweep := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: kill sweep: %v\n", err)
		os.Exit(1)
	}
	allIdentical = allIdentical && identical(killRes)
	var rerouted uint64
	if s := fetchStats(front.addr); s.Federation != nil {
		for _, ls := range s.Federation.PerLeaf {
			rerouted += ls.Failures
		}
	}
	recovery := 0.0
	if !killTime.IsZero() && !recoveredAt.IsZero() {
		recovery = recoveredAt.Sub(killTime).Seconds() * 1000
	}
	killTree(front, leaves)

	summary := fedSummary{
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		NumCPU:               runtime.NumCPU(),
		Seed:                 seed,
		Tasks:                len(tasks),
		Leaves:               nLeaves,
		OneLeafColdSeconds:   oneLeafCold.Seconds(),
		TreeColdSeconds:      treeCold.Seconds(),
		TreeSpeedup:          oneLeafCold.Seconds() / treeCold.Seconds(),
		TreeWarmSeconds:      treeWarm.Seconds(),
		RouteAffinityHitRate: float64(warmHits) / float64(len(tasks)),
		PerLeaf:              perLeaf,
		KillSweepSeconds:     killSweep.Seconds(),
		ReroutedTasks:        rerouted,
		RequeueRecoveryMS:    recovery,
		IdenticalToInProc:    allIdentical,
	}

	t := report.NewTable(fmt.Sprintf("Federated daemon tree (%d leaves over loopback HTTP)", nLeaves),
		"Metric", "Value")
	t.Add("sweep tasks", fmt.Sprint(summary.Tasks))
	t.Add("cold sweep, 1 leaf", oneLeafCold.Round(time.Millisecond).String())
	t.Add(fmt.Sprintf("cold sweep, %d leaves", nLeaves), treeCold.Round(time.Millisecond).String())
	t.Add("tree speedup", fmt.Sprintf("%.2fx", summary.TreeSpeedup))
	t.Add("warm sweep (leaf caches)", treeWarm.Round(time.Microsecond).String())
	t.Add("route-affinity hit rate", fmt.Sprintf("%.2f", summary.RouteAffinityHitRate))
	t.Add("kill sweep (1 leaf dies)", killSweep.Round(time.Millisecond).String())
	t.Add("rerouted tasks", fmt.Sprint(summary.ReroutedTasks))
	t.Add("requeue recovery", fmt.Sprintf("%.1f ms", summary.RequeueRecoveryMS))
	t.Add("identical to in-process", fmt.Sprint(summary.IdenticalToInProc))
	fmt.Print(t)

	data, err := json.MarshalIndent(&summary, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*flagFedOut, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *flagFedOut)
}
