package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"reflect"
	"runtime"
	"strings"
	"time"

	"optirand"
	"optirand/internal/dist"
	"optirand/internal/engine"
	"optirand/internal/report"
)

var (
	flagServebench = flag.Bool("servebench", false, "benchmark the optirandd service (throughput, cache-hit latency), write a JSON summary")
	flagServeOut   = flag.String("serveout", "BENCH_service.json", "servebench: summary output path")
	flagServeCirc  = flag.String("servecircuits", "c432,c880,c1908", "servebench: comma-separated circuits")
	flagServeN     = flag.Int("serven", 1024, "servebench: patterns per campaign")
	flagServeReps  = flag.Int("servereps", 4, "servebench: seeds per circuit × weighting cell")
	flagServeHits  = flag.Int("servehits", 200, "servebench: cache-hit requests to time")
)

// serveSummary is the BENCH_service.json schema: the service
// performance trajectory's seed measurement.
type serveSummary struct {
	GOMAXPROCS          int     `json:"gomaxprocs"`
	NumCPU              int     `json:"numcpu"`
	Seed                uint64  `json:"seed"`
	Tasks               int     `json:"tasks"`
	Patterns            int     `json:"patterns"`
	ColdSweepSeconds    float64 `json:"cold_sweep_seconds"`
	WarmSweepSeconds    float64 `json:"warm_sweep_seconds"`
	WarmSpeedup         float64 `json:"warm_speedup"`
	CacheHitRequests    int     `json:"cache_hit_requests"`
	CacheHitRPS         float64 `json:"cache_hit_rps"`
	CacheHitMeanMillis  float64 `json:"cache_hit_mean_ms"`
	CacheHitBestMillis  float64 `json:"cache_hit_best_ms"`
	IdenticalToInProc   bool    `json:"identical_to_inprocess"`
	WarmSweepAllCached  bool    `json:"warm_sweep_all_cached"`
	CampaignsPerSecCold float64 `json:"campaigns_per_sec_cold"`
}

// servebenchTasks expands the benchmarked circuits into a sweep grid
// (conventional + skewed weightings, several seeds per cell).
func servebenchTasks(seed uint64) []*engine.Task {
	sweep := &engine.Sweep{
		BaseSeed:    seed,
		Repetitions: *flagServeReps,
		Patterns:    *flagServeN,
	}
	for _, name := range strings.Split(*flagServeCirc, ",") {
		name = strings.TrimSpace(name)
		b, ok := optirand.BenchmarkByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgen: unknown circuit %q (try -list)\n", name)
			os.Exit(2)
		}
		c := b.Build()
		skewed := make([]float64, c.NumInputs())
		for i := range skewed {
			skewed[i] = 0.1 + 0.8*float64(i)/float64(len(skewed))
		}
		sweep.Circuits = append(sweep.Circuits, engine.SweepCircuit{
			Name:    name,
			Circuit: c,
			Faults:  optirand.CollapsedFaults(c),
			Weightings: []engine.Weighting{
				{Name: "conventional", Sets: [][]float64{optirand.UniformWeights(c)}},
				{Name: "skewed", Sets: [][]float64{skewed}},
			},
		})
	}
	return sweep.Tasks()
}

// servebench measures daemon throughput: a cold sweep (every campaign
// executed by the fleet), the same sweep warm (every campaign answered
// from the content-addressed cache), and the request rate and latency
// of single cache-hit campaign requests — the serving-path numbers the
// north star cares about.
func servebench() {
	const seed = 1987
	tasks := servebenchTasks(seed)

	// In-process reference for the identity check.
	ref, err := engine.Run(context.Background(), tasks, runtime.GOMAXPROCS(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}

	// Real daemon on a loopback listener.
	srv := dist.NewServer(dist.ServerOptions{Workers: runtime.GOMAXPROCS(0), CacheSize: 4096})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln) //nolint:errcheck // closed on exit
	defer httpSrv.Close()
	cl := dist.NewClient(ln.Addr().String())

	start := time.Now()
	cold, coldHits, err := cl.Sweep(context.Background(), tasks)
	coldTime := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: cold sweep: %v\n", err)
		os.Exit(1)
	}
	start = time.Now()
	warm, warmHits, err := cl.Sweep(context.Background(), tasks)
	warmTime := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: warm sweep: %v\n", err)
		os.Exit(1)
	}

	identical := coldHits == 0 && reflect.DeepEqual(cold, warm)
	for i := range ref {
		identical = identical && reflect.DeepEqual(ref[i].Campaign, cold[i])
	}

	// Cache-hit serving latency: one campaign, many warm requests.
	hitReqs := *flagServeHits
	best := time.Duration(0)
	total := time.Duration(0)
	for i := 0; i < hitReqs; i++ {
		start = time.Now()
		_, cached, err := cl.Campaign(context.Background(), tasks[0])
		d := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: cache-hit request: %v\n", err)
			os.Exit(1)
		}
		if !cached {
			fmt.Fprintf(os.Stderr, "benchgen: warm request missed the cache\n")
			os.Exit(1)
		}
		total += d
		if best == 0 || d < best {
			best = d
		}
	}

	summary := serveSummary{
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		NumCPU:              runtime.NumCPU(),
		Seed:                seed,
		Tasks:               len(tasks),
		Patterns:            *flagServeN,
		ColdSweepSeconds:    coldTime.Seconds(),
		WarmSweepSeconds:    warmTime.Seconds(),
		WarmSpeedup:         coldTime.Seconds() / warmTime.Seconds(),
		CacheHitRequests:    hitReqs,
		CacheHitRPS:         float64(hitReqs) / total.Seconds(),
		CacheHitMeanMillis:  total.Seconds() * 1000 / float64(hitReqs),
		CacheHitBestMillis:  best.Seconds() * 1000,
		IdenticalToInProc:   identical,
		WarmSweepAllCached:  warmHits == len(tasks),
		CampaignsPerSecCold: float64(len(tasks)) / coldTime.Seconds(),
	}

	t := report.NewTable("Service throughput (optirandd over loopback HTTP)",
		"Metric", "Value")
	t.Add("sweep tasks", fmt.Sprint(summary.Tasks))
	t.Add("cold sweep", coldTime.Round(time.Millisecond).String())
	t.Add("warm sweep (all cached)", warmTime.Round(time.Microsecond).String())
	t.Add("warm speedup", fmt.Sprintf("%.1fx", summary.WarmSpeedup))
	t.Add("campaigns/s (cold)", fmt.Sprintf("%.1f", summary.CampaignsPerSecCold))
	t.Add("cache-hit requests/s", fmt.Sprintf("%.0f", summary.CacheHitRPS))
	t.Add("cache-hit latency (mean)", fmt.Sprintf("%.3f ms", summary.CacheHitMeanMillis))
	t.Add("identical to in-process", fmt.Sprint(summary.IdenticalToInProc))
	fmt.Print(t)

	data, err := json.MarshalIndent(&summary, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*flagServeOut, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *flagServeOut)
}
