// Command optirandd serves the optimization and fault-simulation
// engine over HTTP — the distributed backend behind `faultsim -remote`
// and `experiments -remote`.
//
// Usage:
//
//	optirandd                              # serve on :8417, GOMAXPROCS workers
//	optirandd -addr 127.0.0.1:9000 -workers 8 -simworkers 2
//	optirandd -cachesize 4096              # bigger result cache
//	optirandd -cache-dir /var/lib/optirand # persist the warm set across restarts
//	optirandd -cache-dir D -cache-snapshot 30s  # + periodic snapshots (crash-safe)
//	optirandd -queue-limit 256             # shed with 429 + Retry-After past the watermark
//	optirandd -drain-timeout 1m            # SIGTERM: finish in-flight work for up to 1m
//
// On SIGINT or SIGTERM the daemon drains instead of dying: healthz
// flips to "draining" (fronts route around it), new work is shed with
// 503 + Retry-After, and in-flight requests get -drain-timeout to
// finish before the listener is forced closed.
//
// A daemon tree — one front routing to a fleet of leaf daemons on a
// consistent-hash ring keyed by circuit, so each leaf keeps a hot
// compiled-circuit/blob/result-cache working set:
//
//	optirandd -role leaf -addr :8421       # leaves: ordinary daemons
//	optirandd -role leaf -addr :8422
//	optirandd -addr :8417 \
//	    -upstream :8421 -upstream :8422    # the front (role "front")
//
// The front probes each leaf's GET /v1/healthz every -health-interval:
// a dead leaf leaves the ring and its in-flight tasks requeue onto the
// survivors (after the -retry-delay backoff); a recovered leaf rejoins
// at the same ring positions, so its circuits come back to it warm.
// Tree answers are byte-identical to a standalone daemon's, and to
// in-process execution.
//
// Endpoints (JSON wire format, versioned; see internal/wire):
//
//	POST /v1/optimize     run the paper's OPTIMIZE procedure for a circuit
//	POST /v1/campaign     run one fault-simulation campaign
//	POST /v1/sweep        run a task batch; results return positionally
//	                      (streamed per task as NDJSON when the client
//	                      sends Accept: application/x-ndjson)
//	PUT  /v1/blobs/{hash} upload a content-addressed circuit/fault blob
//	GET  /v1/blobs/{hash} fetch one (HEAD probes residency)
//	GET  /v1/stats        fleet, cache, blob store, dedup, and (on a
//	                      front) per-leaf federation counters
//	GET  /v1/healthz      cheap liveness + role/readiness payload
//
// All campaign work flows through one bounded worker fleet and a
// content-addressed result cache keyed by task identity, so repeated
// circuit × weighting × seed submissions are answered from cache with
// byte-identical payloads. Sweep tasks may reference their circuit
// and fault list by content address (upload once via /v1/blobs,
// reference by hash thereafter — the client negotiates this
// automatically), cutting request bytes by orders of magnitude for
// many-seed grids. With -cache-dir the result cache is written to
// disk on shutdown and reloaded on start, so a restarted daemon keeps
// its warm set. A sweep answered by the daemon is bit-identical to
// the same sweep run in-process by engine.Run — any worker count, any
// submission order, cold or warm cache, streamed or batched, inline
// or by-ref, standalone or routed through a federation front.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"optirand/internal/dist"
)

// upstreamFlags collects repeated -upstream values (each of which may
// itself be a comma-separated list).
type upstreamFlags []string

func (u *upstreamFlags) String() string { return strings.Join(*u, ",") }

func (u *upstreamFlags) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			*u = append(*u, s)
		}
	}
	return nil
}

var (
	flagAddr       = flag.String("addr", "127.0.0.1:8417", "listen address (loopback by default; the service is unauthenticated)")
	flagWorkers    = flag.Int("workers", runtime.GOMAXPROCS(0), "campaign worker fleet size (shared by all requests; on a front, the routed-request fan-out width)")
	flagSimWorkers = flag.Int("simworkers", 1, "fault-shard workers inside each campaign (results identical for any count)")
	flagCacheSize  = flag.Int("cachesize", 1024, "content-addressed result cache entries (negative disables caching)")
	flagCacheDir   = flag.String("cache-dir", "", "persist the result cache here (loaded on start, written on shutdown)")
	flagSnapshot   = flag.Duration("cache-snapshot", 0, "with -cache-dir: also persist the cache every interval (e.g. 30s), so a crash loses at most one interval of warm results")
	flagSnapDirty  = flag.Int("cache-snapshot-dirty", 1, "minimum new results since the last snapshot for a -cache-snapshot tick to write")
	flagBlobBytes  = flag.Int64("blob-bytes", 0, "content-addressed blob store byte budget (0 selects the default)")
	flagRetries    = flag.Int("maxattempts", 3, "execution attempts per task before a batch fails")
	flagRetryDelay = flag.Duration("retry-delay", 100*time.Millisecond, "base of the jittered exponential backoff between a task's retry attempts (0 requeues immediately)")
	flagJournal    = flag.String("journal", "", "journal every completed result in this directory and serve journaled tasks without re-executing, so a daemon restart resumes half-done sweeps")
	flagHealthInt  = flag.Duration("health-interval", 2*time.Second, "with -upstream: leaf health-check cadence (dead leaves leave the routing ring, recovered ones rejoin)")
	flagRole       = flag.String("role", "", "role label reported by /v1/stats and /v1/healthz (default: front with -upstream, standalone otherwise; label fleet members leaf)")
	flagQueueLimit = flag.Int("queue-limit", 0, "shed new work with 429 + Retry-After once this many tasks are queued (0 disables admission control)")
	flagDrainTime  = flag.Duration("drain-timeout", 30*time.Second, "on SIGINT/SIGTERM: how long to let in-flight requests finish before forcing shutdown")
)

func main() {
	var upstreams upstreamFlags
	flag.Var(&upstreams, "upstream", "run as a federation front routing tasks to this leaf daemon (repeatable, or comma-separated)")
	flag.Parse()
	srv := dist.NewServer(dist.ServerOptions{
		Workers:          *flagWorkers,
		SimWorkers:       *flagSimWorkers,
		CacheSize:        *flagCacheSize,
		CacheDir:         *flagCacheDir,
		SnapshotInterval: *flagSnapshot,
		SnapshotDirty:    *flagSnapDirty,
		JournalDir:       *flagJournal,
		BlobBytes:        *flagBlobBytes,
		MaxAttempts:      *flagRetries,
		RetryDelay:       *flagRetryDelay,
		QueueLimit:       *flagQueueLimit,
		Upstreams:        upstreams,
		HealthInterval:   *flagHealthInt,
		Role:             *flagRole,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "optirandd: "+format+"\n", args...)
		},
	})
	defer srv.Close()
	if len(upstreams) > 0 {
		fmt.Printf("optirandd: federation front on %s routing to %d leaves (%s), %d concurrent routed requests\n",
			*flagAddr, len(upstreams), strings.Join(upstreams, ", "), *flagWorkers)
	} else {
		fmt.Printf("optirandd: serving /v1/{optimize,campaign,sweep,blobs,stats,healthz} on %s (%d workers)\n",
			*flagAddr, *flagWorkers)
	}

	// SIGINT/SIGTERM drains gracefully: BeginDrain first, so
	// /v1/healthz answers "draining" (federation fronts route around
	// this daemon) and new work is shed with 503 + Retry-After while
	// in-flight requests finish; then the HTTP shutdown waits up to
	// -drain-timeout for those to complete, and the deferred Close
	// stops the worker fleet — and, on a front, the federation health
	// checker.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *flagAddr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "optirandd: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintf(os.Stderr, "optirandd: signal — draining in-flight requests (up to %v)\n", *flagDrainTime)
		srv.BeginDrain()
		// Grace window: keep the listener open so fronts and load
		// balancers can observe the drain over fresh connections
		// (healthz answers "draining", new work is shed 503) instead
		// of finding a vanished socket. Then stop accepting and wait
		// out in-flight requests on the rest of the budget; when that
		// expires, force-close the survivors — their clients retry
		// elsewhere, and the worker fleet finishes its current
		// campaigns before the deferred Close lets the process exit.
		grace := *flagDrainTime / 4
		if grace > 2*time.Second {
			grace = 2 * time.Second
		}
		time.Sleep(grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *flagDrainTime-grace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "optirandd: drain budget spent — closing remaining connections: %v\n", err)
			httpSrv.Close() //nolint:errcheck // already on the forced-exit path
		}
	}
}
