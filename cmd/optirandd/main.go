// Command optirandd serves the optimization and fault-simulation
// engine over HTTP — the distributed backend behind `faultsim -remote`
// and `experiments -remote`.
//
// Usage:
//
//	optirandd                              # serve on :8417, GOMAXPROCS workers
//	optirandd -addr 127.0.0.1:9000 -workers 8 -simworkers 2
//	optirandd -cachesize 4096              # bigger result cache
//	optirandd -cache-dir /var/lib/optirand # persist the warm set across restarts
//	optirandd -cache-dir D -cache-snapshot 30s  # + periodic snapshots (crash-safe)
//
// Endpoints (JSON wire format, versioned; see internal/wire):
//
//	POST /v1/optimize     run the paper's OPTIMIZE procedure for a circuit
//	POST /v1/campaign     run one fault-simulation campaign
//	POST /v1/sweep        run a task batch; results return positionally
//	                      (streamed per task as NDJSON when the client
//	                      sends Accept: application/x-ndjson)
//	PUT  /v1/blobs/{hash} upload a content-addressed circuit/fault blob
//	GET  /v1/blobs/{hash} fetch one (HEAD probes residency)
//	GET  /v1/stats        fleet, cache, blob store, and dedup counters
//
// All campaign work flows through one bounded worker fleet and a
// content-addressed result cache keyed by task identity, so repeated
// circuit × weighting × seed submissions are answered from cache with
// byte-identical payloads. Sweep tasks may reference their circuit
// and fault list by content address (upload once via /v1/blobs,
// reference by hash thereafter — the client negotiates this
// automatically), cutting request bytes by orders of magnitude for
// many-seed grids. With -cache-dir the result cache is written to
// disk on shutdown and reloaded on start, so a restarted daemon keeps
// its warm set. A sweep answered by the daemon is bit-identical to
// the same sweep run in-process by engine.Run — any worker count, any
// submission order, cold or warm cache, streamed or batched, inline
// or by-ref.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"time"

	"optirand/internal/dist"
)

var (
	flagAddr       = flag.String("addr", "127.0.0.1:8417", "listen address (loopback by default; the service is unauthenticated)")
	flagWorkers    = flag.Int("workers", runtime.GOMAXPROCS(0), "campaign worker fleet size (shared by all requests)")
	flagSimWorkers = flag.Int("simworkers", 1, "fault-shard workers inside each campaign (results identical for any count)")
	flagCacheSize  = flag.Int("cachesize", 1024, "content-addressed result cache entries (negative disables caching)")
	flagCacheDir   = flag.String("cache-dir", "", "persist the result cache here (loaded on start, written on shutdown)")
	flagSnapshot   = flag.Duration("cache-snapshot", 0, "with -cache-dir: also persist the cache every interval (e.g. 30s), so a crash loses at most one interval of warm results")
	flagSnapDirty  = flag.Int("cache-snapshot-dirty", 1, "minimum new results since the last snapshot for a -cache-snapshot tick to write")
	flagBlobBytes  = flag.Int64("blob-bytes", 0, "content-addressed blob store byte budget (0 selects the default)")
	flagRetries    = flag.Int("maxattempts", 3, "execution attempts per task before a batch fails")
	flagJournal    = flag.String("journal", "", "journal every completed result in this directory and serve journaled tasks without re-executing, so a daemon restart resumes half-done sweeps")
)

func main() {
	flag.Parse()
	srv := dist.NewServer(dist.ServerOptions{
		Workers:          *flagWorkers,
		SimWorkers:       *flagSimWorkers,
		CacheSize:        *flagCacheSize,
		CacheDir:         *flagCacheDir,
		SnapshotInterval: *flagSnapshot,
		SnapshotDirty:    *flagSnapDirty,
		JournalDir:       *flagJournal,
		BlobBytes:        *flagBlobBytes,
		MaxAttempts:      *flagRetries,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "optirandd: "+format+"\n", args...)
		},
	})
	defer srv.Close()
	fmt.Printf("optirandd: serving /v1/{optimize,campaign,sweep,blobs,stats} on %s (%d workers)\n",
		*flagAddr, *flagWorkers)

	// ^C drains gracefully: stop accepting, let in-flight requests
	// finish (their own contexts cancel when clients hang up), then
	// stop the worker fleet via the deferred Close.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	httpSrv := &http.Server{Addr: *flagAddr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "optirandd: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "optirandd: interrupt — draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "optirandd: shutdown: %v\n", err)
		}
	}
}
