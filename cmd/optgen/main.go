// Command optgen computes optimized input probabilities for a circuit:
// the paper's OPTIMIZE procedure as a standalone tool.
//
// Usage:
//
//	optgen -bench design.bench           # read a netlist from disk
//	optgen -circuit s1                   # use a built-in benchmark
//	optgen -circuit c7552 -quantize 0.05 -confidence 0.999
//	optgen -circuit s2 -parts 3          # §5.3 multi-distribution mode
//	optgen -circuit c7552 -remote localhost:8417   # optimize on an optirandd
//
// Output: one line per primary input with the optimized probability,
// preceded by a summary of the achieved test-length reduction.
//
// -remote runs the OPTIMIZE procedure on an optirandd service; the
// weights are identical to a local run. Only the wire-portable options
// (-confidence, -quantize, -sweeps) combine with -remote.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"optirand"
	"optirand/internal/report"
)

var (
	flagBench      = flag.String("bench", "", "path to a .bench netlist")
	flagCircuit    = flag.String("circuit", "", "built-in benchmark name")
	flagConfidence = flag.Float64("confidence", optirand.DefaultConfidence, "confidence level")
	flagQuantize   = flag.Float64("quantize", 0, "snap weights to this grid (e.g. 0.05); 0 = off")
	flagAlpha      = flag.Float64("alpha", 0, "relative improvement threshold (0 = default)")
	flagSweeps     = flag.Int("sweeps", 0, "max coordinate sweeps (0 = default)")
	flagParts      = flag.Int("parts", 1, "max distributions (>1 enables the §5.3 extension)")
	flagRemote     = flag.String("remote", "", "optirandd address (host:port or URL); optimize on the service instead of in-process")
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "optgen: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	flag.Parse()
	var c *optirand.Circuit
	switch {
	case *flagBench != "":
		var err error
		c, err = optirand.ParseBenchFile(*flagBench)
		if err != nil {
			fatalf("%v", err)
		}
	case *flagCircuit != "":
		b, ok := optirand.BenchmarkByName(*flagCircuit)
		if !ok {
			fatalf("unknown circuit %q", *flagCircuit)
		}
		c = b.Build()
	default:
		fatalf("need -bench or -circuit")
	}

	faults := optirand.CollapsedFaults(c)
	opts := optirand.OptimizeOptions{
		Confidence: *flagConfidence,
		Quantize:   *flagQuantize,
		Alpha:      *flagAlpha,
		MaxSweeps:  *flagSweeps,
	}

	if *flagParts > 1 {
		if *flagRemote != "" {
			fatalf("-parts > 1 cannot combine with -remote: multi-distribution optimization is not served by the wire protocol (run it locally)")
		}
		m, err := optirand.OptimizeMultiDistribution(c, faults, *flagParts, opts)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("# circuit %s: %d inputs, %d faults\n", c.Name, c.NumInputs(), len(faults))
		fmt.Printf("# single-distribution N = %s, %d-part mixture N = %s\n",
			report.Sci(m.SingleN), m.Parts(), report.Sci(m.MixtureN))
		for r, ws := range m.WeightSets {
			fmt.Printf("# distribution %d (serves %d faults)\n", r, m.PartSizes[r])
			printWeights(c, ws)
		}
		return
	}

	var runnerOpts []optirand.Option
	if *flagRemote != "" {
		runnerOpts = append(runnerOpts, optirand.WithRemote(*flagRemote), optirand.WithRemoteTimeout(0))
	}
	r := optirand.NewRunner(runnerOpts...)
	defer r.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// First ^C cancels ctx; unregistering then restores the default
	// signal disposition, so a second ^C terminates even while
	// non-interruptible local work is still finishing.
	go func() { <-ctx.Done(); stop() }()

	res, err := r.Optimize(ctx, optirand.OptimizeSpec{Circuit: c, Faults: faults, Options: opts})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("# circuit %s: %d inputs, %d faults (%d suspected redundant)\n",
		c.Name, c.NumInputs(), len(faults), res.SuspectedRedundant)
	fmt.Printf("# conventional N = %s, optimized N = %s (gain %s, %d sweeps, %d analyses, %v)\n",
		report.Sci(res.InitialN), report.Sci(res.FinalN), report.Sci(res.Gain()),
		res.Sweeps, res.Analyses, res.Elapsed.Round(1000000))
	printWeights(c, res.Weights)
}

func printWeights(c *optirand.Circuit, ws []float64) {
	for i, w := range ws {
		fmt.Printf("%s %.4f\n", c.GateName(c.Inputs[i]), w)
	}
}
