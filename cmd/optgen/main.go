// Command optgen computes optimized input probabilities for a circuit:
// the paper's OPTIMIZE procedure as a standalone tool.
//
// Usage:
//
//	optgen -bench design.bench           # read a netlist from disk
//	optgen -circuit s1                   # use a built-in benchmark
//	optgen -circuit c7552 -quantize 0.05 -confidence 0.999
//	optgen -circuit s2 -parts 3          # §5.3 multi-distribution mode
//
// Output: one line per primary input with the optimized probability,
// preceded by a summary of the achieved test-length reduction.
package main

import (
	"flag"
	"fmt"
	"os"

	"optirand"
	"optirand/internal/report"
)

var (
	flagBench      = flag.String("bench", "", "path to a .bench netlist")
	flagCircuit    = flag.String("circuit", "", "built-in benchmark name")
	flagConfidence = flag.Float64("confidence", optirand.DefaultConfidence, "confidence level")
	flagQuantize   = flag.Float64("quantize", 0, "snap weights to this grid (e.g. 0.05); 0 = off")
	flagAlpha      = flag.Float64("alpha", 0, "relative improvement threshold (0 = default)")
	flagSweeps     = flag.Int("sweeps", 0, "max coordinate sweeps (0 = default)")
	flagParts      = flag.Int("parts", 1, "max distributions (>1 enables the §5.3 extension)")
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "optgen: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	flag.Parse()
	var c *optirand.Circuit
	switch {
	case *flagBench != "":
		var err error
		c, err = optirand.ParseBenchFile(*flagBench)
		if err != nil {
			fatalf("%v", err)
		}
	case *flagCircuit != "":
		b, ok := optirand.BenchmarkByName(*flagCircuit)
		if !ok {
			fatalf("unknown circuit %q", *flagCircuit)
		}
		c = b.Build()
	default:
		fatalf("need -bench or -circuit")
	}

	faults := optirand.CollapsedFaults(c)
	opts := optirand.OptimizeOptions{
		Confidence: *flagConfidence,
		Quantize:   *flagQuantize,
		Alpha:      *flagAlpha,
		MaxSweeps:  *flagSweeps,
	}

	if *flagParts > 1 {
		m, err := optirand.OptimizeMultiDistribution(c, faults, *flagParts, opts)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("# circuit %s: %d inputs, %d faults\n", c.Name, c.NumInputs(), len(faults))
		fmt.Printf("# single-distribution N = %s, %d-part mixture N = %s\n",
			report.Sci(m.SingleN), m.Parts(), report.Sci(m.MixtureN))
		for r, ws := range m.WeightSets {
			fmt.Printf("# distribution %d (serves %d faults)\n", r, m.PartSizes[r])
			printWeights(c, ws)
		}
		return
	}

	res, err := optirand.OptimizeWeights(c, faults, opts)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("# circuit %s: %d inputs, %d faults (%d suspected redundant)\n",
		c.Name, c.NumInputs(), len(faults), res.SuspectedRedundant)
	fmt.Printf("# conventional N = %s, optimized N = %s (gain %s, %d sweeps, %d analyses, %v)\n",
		report.Sci(res.InitialN), report.Sci(res.FinalN), report.Sci(res.Gain()),
		res.Sweeps, res.Analyses, res.Elapsed.Round(1000000))
	printWeights(c, res.Weights)
}

func printWeights(c *optirand.Circuit, ws []float64) {
	for i, w := range ws {
		fmt.Printf("%s %.4f\n", c.GateName(c.Inputs[i]), w)
	}
}
