// Command analyze is the PROTEST-style testability report: per-circuit
// signal probabilities, observabilities, the detection-probability
// profile, the hardest faults, and the required random-test length —
// everything the paper's ANALYSIS/SORT/NORMALIZE pipeline computes,
// as a human-readable report.
//
// Usage:
//
//	analyze -circuit s1
//	analyze -bench design.bench -weights w.txt -hardest 20
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"optirand"
	"optirand/internal/report"
)

var (
	flagBench      = flag.String("bench", "", "path to a .bench netlist")
	flagCircuit    = flag.String("circuit", "", "built-in benchmark name")
	flagWeights    = flag.String("weights", "", "weights file (optgen output); default all 0.5")
	flagHardest    = flag.Int("hardest", 10, "number of hardest faults to list")
	flagConfidence = flag.Float64("confidence", optirand.DefaultConfidence, "confidence level")
	flagHistogram  = flag.Bool("histogram", true, "print the detectability profile")
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "analyze: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	flag.Parse()
	var c *optirand.Circuit
	switch {
	case *flagBench != "":
		var err error
		c, err = optirand.ParseBenchFile(*flagBench)
		if err != nil {
			fatalf("%v", err)
		}
	case *flagCircuit != "":
		b, ok := optirand.BenchmarkByName(*flagCircuit)
		if !ok {
			fatalf("unknown circuit %q", *flagCircuit)
		}
		c = b.Build()
	default:
		fatalf("need -bench or -circuit")
	}

	weights := optirand.UniformWeights(c)
	if *flagWeights != "" {
		if err := loadWeights(c, *flagWeights, weights); err != nil {
			fatalf("%v", err)
		}
	}

	st := c.Stats()
	fmt.Printf("circuit %s: %d inputs, %d outputs, %d gates, depth %d, %d fault sites\n",
		c.Name, st.Inputs, st.Outputs, st.Gates, st.Depth, st.Lines)

	u := optirand.Faults(c)
	fmt.Printf("fault model: %d uncollapsed stuck-at faults in %d equivalence classes\n",
		len(u.All), len(u.Reps))

	probs := optirand.EstimateDetectProbs(c, u.Reps, weights)
	var live []float64
	redundant := 0
	for _, p := range probs {
		if p > 0 {
			live = append(live, p)
		} else {
			redundant++
		}
	}
	fmt.Printf("suspected redundant (estimate exactly 0): %d\n\n", redundant)

	if *flagHistogram {
		t := report.NewTable("Detectability profile", "p_f range", "Faults", "Bar")
		buckets := []float64{1e-9, 1e-7, 1e-5, 1e-3, 1e-1, 1.01}
		labels := []string{"< 1e-9", "1e-9..1e-7", "1e-7..1e-5", "1e-5..1e-3", "1e-3..0.1", ">= 0.1"}
		counts := make([]int, len(buckets)+1)
		for _, p := range live {
			idx := sort.SearchFloat64s(buckets, p)
			counts[idx]++
		}
		maxCount := 1
		for _, n := range counts[:len(labels)] {
			if n > maxCount {
				maxCount = n
			}
		}
		for i, lab := range labels {
			bar := strings.Repeat("#", counts[i]*40/maxCount)
			t.Add(lab, fmt.Sprint(counts[i]), bar)
		}
		fmt.Print(t, "\n")
	}

	// Hardest faults.
	type hardFault struct {
		idx int
		p   float64
	}
	hf := make([]hardFault, 0, len(probs))
	for i, p := range probs {
		if p > 0 {
			hf = append(hf, hardFault{i, p})
		}
	}
	sort.Slice(hf, func(a, b int) bool { return hf[a].p < hf[b].p })
	n := *flagHardest
	if n > len(hf) {
		n = len(hf)
	}
	t := report.NewTable(fmt.Sprintf("%d hardest faults", n), "Fault", "p_f", "N for this fault alone")
	for _, h := range hf[:n] {
		soloN := math.Log(1/(-math.Log(*flagConfidence))) / h.p
		t.Add(u.Reps[h.idx].Describe(c), fmt.Sprintf("%.3g", h.p), report.Sci(soloN))
	}
	fmt.Print(t, "\n")

	res := optirand.RequiredTestLength(probs, *flagConfidence)
	fmt.Printf("required random-test length (confidence %.4g): %s patterns\n",
		*flagConfidence, report.Sci(res.N))
	fmt.Printf("numerically relevant hard faults (nf): %d\n", res.HardFaults)
	fmt.Printf("expected coverage at that length: %s\n",
		report.Pct(optirand.ExpectedCoverage(live, res.N)))
}

func loadWeights(c *optirand.Circuit, path string, weights []float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	byName := make(map[string]int)
	for pos, g := range c.Inputs {
		byName[c.GateName(g)] = pos
	}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return fmt.Errorf("%s:%d: want \"name probability\"", path, line)
		}
		pos, ok := byName[fields[0]]
		if !ok {
			return fmt.Errorf("%s:%d: unknown input %q", path, line, fields[0])
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || w < 0 || w > 1 {
			return fmt.Errorf("%s:%d: bad probability %q", path, line, fields[1])
		}
		weights[pos] = w
	}
	return sc.Err()
}
