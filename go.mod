module optirand

go 1.22
