package optirand_test

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"optirand"
	"optirand/internal/dist"
)

// testSweepSpec builds a small circuits × weightings × seeds grid
// (including a mixture source) shared by the cross-backend suites.
func testSweepSpec(t *testing.T) (optirand.SweepSpec, int) {
	t.Helper()
	spec := optirand.SweepSpec{
		BaseSeed:    1987,
		Repetitions: 2,
		Patterns:    320,
		CurveStep:   100,
	}
	cells := 0
	for _, name := range []string{"c432", "c880"} {
		b, ok := optirand.BenchmarkByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		c := b.Build()
		n := c.NumInputs()
		uniform := optirand.UniformWeights(c)
		skewed := make([]float64, n)
		for i := range skewed {
			skewed[i] = 0.1 + 0.8*float64(i)/float64(n)
		}
		spec.Circuits = append(spec.Circuits, optirand.SweepCircuit{
			Name:    name,
			Circuit: c,
			Faults:  optirand.CollapsedFaults(c),
			Weightings: []optirand.SweepWeighting{
				{Name: "uniform", Source: optirand.Weights(uniform)},
				{Name: "mixture", Source: optirand.Mixture(uniform, skewed)},
				// Closed-loop campaigns ride the same grid: both
				// re-weighting strategies must be byte-identical on
				// every backend, like everything else.
				{Name: "adaptive-reopt", Source: optirand.Adaptive(optirand.Weights(uniform),
					optirand.AdaptiveReopt(), optirand.AdaptiveBlock(128), optirand.AdaptiveReoptSweeps(1))},
				{Name: "adaptive-bandit", Source: optirand.Adaptive(optirand.Mixture(uniform, skewed),
					optirand.AdaptiveBandit(0.1), optirand.AdaptiveBlock(128))},
			},
		})
		cells += 4
	}
	return spec, cells * spec.Repetitions
}

// startDaemon hosts an optirandd handler on a loopback listener and
// returns its address.
func startDaemon(t *testing.T, opts dist.ServerOptions) string {
	t.Helper()
	return startLeafDaemon(t, opts).addr
}

// testDaemon is a restartable daemon for federation tests: kill drops
// it hard (in-flight connections included — a crashed leaf), restart
// brings a fresh daemon up on the same address so the ring readmits it
// at its old positions.
type testDaemon struct {
	t    *testing.T
	addr string
	opts dist.ServerOptions

	mu      sync.Mutex
	srv     *dist.Server
	httpSrv *http.Server
}

// startLeafDaemon hosts a daemon on a loopback listener (or on
// d.addr when restarting) and registers cleanup.
func startLeafDaemon(t *testing.T, opts dist.ServerOptions) *testDaemon {
	t.Helper()
	d := &testDaemon{t: t, addr: "127.0.0.1:0", opts: opts}
	d.restart()
	t.Cleanup(d.kill)
	return d
}

func (d *testDaemon) kill() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.httpSrv == nil {
		return
	}
	d.httpSrv.Close()
	d.srv.Close()
	d.httpSrv, d.srv = nil, nil
}

func (d *testDaemon) restart() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.httpSrv != nil {
		d.t.Fatalf("daemon %s restarted while running", d.addr)
	}
	srv := dist.NewServer(d.opts)
	ln, err := net.Listen("tcp", d.addr)
	if err != nil {
		d.t.Fatal(err)
	}
	d.addr = ln.Addr().String()
	d.srv, d.httpSrv = srv, &http.Server{Handler: srv}
	go d.httpSrv.Serve(ln)
}

// equalResults demands two result sets agree positionally in label,
// seed, and every campaign byte.
func equalResults(t *testing.T, label string, ref, got []optirand.TaskResult) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(ref))
	}
	for i := range ref {
		if ref[i].Task.Label != got[i].Task.Label || ref[i].Task.Seed != got[i].Task.Seed {
			t.Fatalf("%s: slot %d is task %s/%d, want %s/%d", label, i,
				got[i].Task.Label, got[i].Task.Seed, ref[i].Task.Label, ref[i].Task.Seed)
		}
		if !reflect.DeepEqual(ref[i].Campaign, got[i].Campaign) {
			t.Fatalf("%s: slot %d (%s): campaign differs from the serial reference", label, i, ref[i].Task.Label)
		}
	}
}

// TestRunnerCrossBackendEquivalence is the acceptance contract of the
// Runner redesign: one SweepSpec produces byte-identical results on
// every backend a Runner can be constructed with — local-serial,
// local-parallel at several worker counts, dispatcher-cached (cold and
// warm), and a live optirandd daemon (cold and warm, with and without
// a client-side cache).
func TestRunnerCrossBackendEquivalence(t *testing.T) {
	ctx := context.Background()
	spec, nTasks := testSweepSpec(t)

	serial := optirand.NewRunner(optirand.WithWorkers(1))
	defer serial.Close()
	ref, err := serial.Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != nTasks {
		t.Fatalf("grid expanded to %d tasks, want %d", len(ref), nTasks)
	}

	runners := map[string]*optirand.Runner{
		"local-parallel-2":   optirand.NewRunner(optirand.WithWorkers(2)),
		"local-parallel-3":   optirand.NewRunner(optirand.WithWorkers(3), optirand.WithSimWorkers(2)),
		"local-parallel-max": optirand.NewRunner(optirand.WithWorkers(0)),
		// Intra-campaign scheduling of the compiled kernel: pattern
		// ranges instead of fault shards, and the shared/auto
		// good-machine modes — all bit-identical by construction.
		"local-pattern-shards": optirand.NewRunner(optirand.WithWorkers(2), optirand.WithSimShards(3)),
		"local-shared-goodmachine": optirand.NewRunner(
			optirand.WithSimWorkers(3), optirand.WithGoodMachine(optirand.GoodMachineShared)),
		"local-auto-goodmachine": optirand.NewRunner(
			optirand.WithSimWorkers(2), optirand.WithGoodMachine(optirand.GoodMachineAuto)),
		"dispatcher-cached": optirand.NewRunner(optirand.WithWorkers(3), optirand.WithCache(64)),
		// The default remote transport interns circuits and fault
		// lists by content address…
		"remote-interned": optirand.NewRunner(
			optirand.WithRemote(startDaemon(t, dist.ServerOptions{Workers: 3, SimWorkers: 2, CacheSize: 256})),
			optirand.WithWorkers(4)),
		// …and must be byte-identical to the same daemon fed inline
		// tasks.
		"remote-inline": optirand.NewRunner(
			optirand.WithRemote(startDaemon(t, dist.ServerOptions{Workers: 3, CacheSize: 256})),
			optirand.WithWorkers(4), optirand.WithInlineCircuits()),
		// Whole-batch transport: one /v1/sweep request per sweep, the
		// daemon's fleet does the fan-out, results stream back NDJSON.
		"remote-streamed": optirand.NewRunner(
			optirand.WithRemote(startDaemon(t, dist.ServerOptions{Workers: 2, SimWorkers: 2, CacheSize: 256})),
			optirand.WithRemoteStreaming()),
		"remote-client-cached": optirand.NewRunner(
			optirand.WithRemote(startDaemon(t, dist.ServerOptions{Workers: 2, CacheSize: -1})),
			optirand.WithWorkers(2), optirand.WithCache(64)),
		// A federated tree: a front daemon routing every task to one of
		// three leaf daemons over the consistent-hash ring. The front's
		// own cache is disabled so the warm pass re-routes — leaf-side
		// route affinity must answer it byte-identically anyway.
		"federated-tree": optirand.NewRunner(
			optirand.WithRemote(startDaemon(t, dist.ServerOptions{
				Workers:   3,
				CacheSize: -1,
				Upstreams: []string{
					startDaemon(t, dist.ServerOptions{Workers: 2, CacheSize: 256, Role: dist.RoleLeaf}),
					startDaemon(t, dist.ServerOptions{Workers: 2, CacheSize: 256, Role: dist.RoleLeaf}),
					startDaemon(t, dist.ServerOptions{Workers: 2, CacheSize: 256, Role: dist.RoleLeaf}),
				},
				RetryDelay: 5 * time.Millisecond,
			})),
			optirand.WithWorkers(4)),
	}
	for label, r := range runners {
		got, err := r.Sweep(ctx, spec)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		equalResults(t, label+"/cold", ref, got)
		// Second submission: cached backends answer from their
		// content-addressed caches, uncached ones re-execute — the
		// bytes cannot differ either way.
		warm, err := r.Sweep(ctx, spec)
		if err != nil {
			t.Fatalf("%s warm: %v", label, err)
		}
		equalResults(t, label+"/warm", ref, warm)
		r.Close()
	}

	// Persisted-cache-after-restart: a daemon warms its cache, shuts
	// down (persisting the snapshot), and a fresh daemon loaded from
	// the same directory answers the whole grid from cache —
	// byte-identical to the serial reference.
	dir := t.TempDir()
	srv1 := dist.NewServer(dist.ServerOptions{Workers: 2, CacheSize: 256, CacheDir: dir})
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv1 := &http.Server{Handler: srv1}
	go httpSrv1.Serve(ln1)
	r1 := optirand.NewRunner(optirand.WithRemote(ln1.Addr().String()), optirand.WithWorkers(3))
	got, err := r1.Sweep(ctx, spec)
	if err != nil {
		t.Fatalf("pre-restart: %v", err)
	}
	equalResults(t, "remote-persisted/pre-restart", ref, got)
	r1.Close()
	httpSrv1.Close()
	srv1.Close() // persists the warm set

	r2 := optirand.NewRunner(
		optirand.WithRemote(startDaemon(t, dist.ServerOptions{Workers: 2, CacheSize: 256, CacheDir: dir})),
		optirand.WithWorkers(3))
	defer r2.Close()
	warm, err := r2.Sweep(ctx, spec)
	if err != nil {
		t.Fatalf("post-restart: %v", err)
	}
	equalResults(t, "remote-persisted/post-restart", ref, warm)
	// The restarted daemon must have answered from its reloaded cache,
	// not by re-executing: its stats report one hit per task.
	resp, err := http.Get("http://" + r2.Remote() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Cache *dist.CacheStats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Cache == nil || stats.Cache.Hits != uint64(nTasks) || stats.Cache.Loaded == 0 {
		t.Fatalf("restarted daemon cache stats %+v, want %d hits from a loaded snapshot", stats.Cache, nTasks)
	}
}

// frontFederation fetches the federation section of a front daemon's
// /v1/stats.
func frontFederation(t *testing.T, addr string) *dist.FederationStats {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Role       string                `json:"role"`
		Federation *dist.FederationStats `json:"federation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Role != dist.RoleFront || stats.Federation == nil {
		t.Fatalf("daemon %s reports role %q with federation %v; want a front with federation stats", addr, stats.Role, stats.Federation)
	}
	return stats.Federation
}

// TestRunnerFederatedTreeKillAndRejoin is the federation acceptance
// contract at the public API: a sweep through a 3-leaf tree survives a
// leaf killed mid-sweep — the front requeues the dead leaf's tasks
// onto the survivors — byte-identical to the serial in-process
// reference; the restarted leaf rejoins the ring via the health
// checker; and upstream order is irrelevant (a front configured with
// the leaves in a different order answers identically).
func TestRunnerFederatedTreeKillAndRejoin(t *testing.T) {
	ctx := context.Background()
	spec, nTasks := testSweepSpec(t)

	serial := optirand.NewRunner(optirand.WithWorkers(1))
	defer serial.Close()
	ref, err := serial.Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	leafOpts := dist.ServerOptions{Workers: 2, CacheSize: 64, Role: dist.RoleLeaf}
	leaves := []*testDaemon{
		startLeafDaemon(t, leafOpts),
		startLeafDaemon(t, leafOpts),
		startLeafDaemon(t, leafOpts),
	}
	// Deliberately not configuration order: the ring hashes URLs, so
	// upstream order must not matter.
	upstreams := []string{leaves[2].addr, leaves[0].addr, leaves[1].addr}
	front := startLeafDaemon(t, dist.ServerOptions{
		Workers:        3,
		CacheSize:      -1, // every pass re-routes; identity must come from the tree itself
		Upstreams:      upstreams,
		HealthInterval: 100 * time.Millisecond,
		RetryDelay:     5 * time.Millisecond,
	})
	r := optirand.NewRunner(optirand.WithRemote(front.addr), optirand.WithWorkers(4))
	defer r.Close()

	// Cold pass, killing a leaf that has live routed work as soon as
	// the first result arrives. The kill drops its in-flight
	// connections, so the front must mark it down and requeue.
	var killOnce sync.Once
	var victim *testDaemon
	got := make([]optirand.TaskResult, nTasks)
	err = r.SweepEach(ctx, spec, func(i int, res optirand.TaskResult) {
		got[i] = res
		killOnce.Do(func() {
			for _, ls := range frontFederation(t, front.addr).PerLeaf {
				if !ls.Alive || ls.Routed == 0 {
					continue
				}
				for _, l := range leaves {
					if strings.HasSuffix(ls.URL, l.addr) {
						victim = l
					}
				}
				break
			}
			if victim == nil {
				t.Error("no live leaf with routed work to kill")
				return
			}
			victim.kill()
		})
	})
	if err != nil {
		t.Fatalf("sweep with a mid-flight leaf kill: %v", err)
	}
	equalResults(t, "federated/kill", ref, got)
	if victim == nil {
		t.Fatal("the kill never happened")
	}

	// The health checker notices the corpse even with no traffic.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := frontFederation(t, front.addr)
		if st.Live == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("front still reports %d live leaves %v after the kill", st.Live, st.PerLeaf)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Survivors carry the whole grid.
	midkill, err := r.Sweep(ctx, spec)
	if err != nil {
		t.Fatalf("sweep on the survivors: %v", err)
	}
	equalResults(t, "federated/survivors", ref, midkill)

	// Restart on the same address: the health loop readmits the leaf
	// at its old ring positions, and the tree still answers
	// byte-identically.
	victim.restart()
	for {
		st := frontFederation(t, front.addr)
		if st.Live == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("front reports %d live leaves %v; the restarted leaf never rejoined", st.Live, st.PerLeaf)
		}
		time.Sleep(20 * time.Millisecond)
	}
	rejoined, err := r.Sweep(ctx, spec)
	if err != nil {
		t.Fatalf("sweep after the rejoin: %v", err)
	}
	equalResults(t, "federated/rejoined", ref, rejoined)

	// A front over the same leaves in a different upstream order is
	// the same tree: ring positions hash from leaf URLs, not indices.
	front2 := startLeafDaemon(t, dist.ServerOptions{
		Workers:        3,
		CacheSize:      -1,
		Upstreams:      []string{leaves[0].addr, leaves[1].addr, leaves[2].addr},
		HealthInterval: 100 * time.Millisecond,
		RetryDelay:     5 * time.Millisecond,
	})
	r2 := optirand.NewRunner(optirand.WithRemote(front2.addr), optirand.WithWorkers(3))
	defer r2.Close()
	reordered, err := r2.Sweep(ctx, spec)
	if err != nil {
		t.Fatalf("sweep through the reordered front: %v", err)
	}
	equalResults(t, "federated/reordered-front", ref, reordered)
}

// TestRunnerSweepEachMatchesSweep proves the streaming contract on
// every backend kind: SweepEach delivers each result exactly once,
// and the positional merge reproduces Sweep's slice byte for byte.
func TestRunnerSweepEachMatchesSweep(t *testing.T) {
	ctx := context.Background()
	spec, nTasks := testSweepSpec(t)

	serial := optirand.NewRunner()
	defer serial.Close()
	ref, err := serial.Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	runners := map[string]*optirand.Runner{
		"local-serial":      optirand.NewRunner(optirand.WithWorkers(1)),
		"local-parallel":    optirand.NewRunner(optirand.WithWorkers(4)),
		"dispatcher-cached": optirand.NewRunner(optirand.WithWorkers(2), optirand.WithCache(64)),
		"remote-daemon": optirand.NewRunner(
			optirand.WithRemote(startDaemon(t, dist.ServerOptions{Workers: 2, CacheSize: 64})),
			optirand.WithWorkers(3)),
		// One streaming /v1/sweep request per SweepEach: each delivery
		// crosses the network as the daemon completes it.
		"remote-streamed": optirand.NewRunner(
			optirand.WithRemote(startDaemon(t, dist.ServerOptions{Workers: 2, CacheSize: 64})),
			optirand.WithRemoteStreaming()),
	}
	for label, r := range runners {
		for _, temp := range []string{"cold", "warm"} {
			got := make([]optirand.TaskResult, nTasks)
			calls := 0
			err := r.SweepEach(ctx, spec, func(i int, res optirand.TaskResult) {
				calls++
				if got[i].Campaign != nil {
					t.Fatalf("%s/%s: slot %d delivered twice", label, temp, i)
				}
				got[i] = res
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", label, temp, err)
			}
			if calls != nTasks {
				t.Fatalf("%s/%s: %d deliveries, want %d", label, temp, calls, nTasks)
			}
			equalResults(t, label+"/"+temp, ref, got)
		}
		r.Close()
	}
}

// TestRunnerDeprecatedFacadeDelegates proves the pre-Runner facade
// functions produce byte-identical results to their Runner spellings —
// they are documented as thin wrappers and must stay that way.
func TestRunnerDeprecatedFacadeDelegates(t *testing.T) {
	ctx := context.Background()
	b, _ := optirand.BenchmarkByName("c432")
	c := b.Build()
	faults := optirand.CollapsedFaults(c)
	uniform := optirand.UniformWeights(c)
	skewed := make([]float64, len(uniform))
	for i := range skewed {
		skewed[i] = 0.2 + 0.6*float64(i)/float64(len(skewed))
	}
	r := optirand.NewRunner(optirand.WithSimWorkers(3))
	defer r.Close()

	plain, err := r.Campaign(ctx, optirand.CampaignSpec{
		Circuit: c, Faults: faults, Source: optirand.Weights(uniform),
		Patterns: 700, Seed: 9, CurveStep: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := optirand.SimulateRandomTest(c, faults, uniform, 700, 9, 128); !reflect.DeepEqual(plain, got) {
		t.Fatal("SimulateRandomTest differs from Runner.Campaign")
	}
	if got := optirand.SimulateRandomTestWorkers(c, faults, uniform, 700, 9, 128, 3); !reflect.DeepEqual(plain, got) {
		t.Fatal("SimulateRandomTestWorkers differs from Runner.Campaign")
	}

	mix, err := r.Campaign(ctx, optirand.CampaignSpec{
		Circuit: c, Faults: faults, Source: optirand.Mixture(uniform, skewed),
		Patterns: 700, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]float64{uniform, skewed}
	if got := optirand.SimulateRandomTestMixture(c, faults, sets, 700, 9, 0); !reflect.DeepEqual(mix, got) {
		t.Fatal("SimulateRandomTestMixture differs from Runner.Campaign")
	}
	if got := optirand.SimulateRandomTestMixtureWorkers(c, faults, sets, 700, 9, 0, 2); !reflect.DeepEqual(mix, got) {
		t.Fatal("SimulateRandomTestMixtureWorkers differs from Runner.Campaign")
	}

	// Stream sources: the LFSR hardware model through both spellings.
	src1 := optirand.NewWeightedLFSR(uniform, 4)
	viaRunner, err := r.Campaign(ctx, optirand.CampaignSpec{
		Circuit: c, Faults: faults, Source: optirand.Stream(src1.NextWords), Patterns: 640,
	})
	if err != nil {
		t.Fatal(err)
	}
	src2 := optirand.NewWeightedLFSR(uniform, 4)
	if got := optirand.SimulateWithSource(c, faults, src2.NextWords, 640, 0); !reflect.DeepEqual(viaRunner, got) {
		t.Fatal("SimulateWithSource differs from Runner.Campaign")
	}
}

// TestRunnerOptimizeRemoteMatchesLocal proves Runner.Optimize produces
// identical weights and test lengths in-process and through a live
// daemon, and that non-portable options are rejected remotely with a
// useful error.
func TestRunnerOptimizeRemoteMatchesLocal(t *testing.T) {
	ctx := context.Background()
	b, _ := optirand.BenchmarkByName("s1")
	c := b.Build()
	faults := optirand.CollapsedFaults(c)
	spec := optirand.OptimizeSpec{
		Circuit: c, Faults: faults,
		Options: optirand.OptimizeOptions{Quantize: 0.05, MaxSweeps: 4},
	}

	local := optirand.NewRunner()
	defer local.Close()
	ref, err := local.Optimize(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	remote := optirand.NewRunner(optirand.WithRemote(startDaemon(t, dist.ServerOptions{Workers: 2})))
	defer remote.Close()
	got, err := remote.Optimize(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Weights, got.Weights) {
		t.Fatal("remote optimization weights differ from local")
	}
	if ref.InitialN != got.InitialN || ref.FinalN != got.FinalN || ref.Sweeps != got.Sweeps {
		t.Fatalf("remote lengths (%g, %g, %d) differ from local (%g, %g, %d)",
			got.InitialN, got.FinalN, got.Sweeps, ref.InitialN, ref.FinalN, ref.Sweeps)
	}

	badSpec := spec
	badSpec.Options.Jitter = 0.1
	if _, err := remote.Optimize(ctx, badSpec); err == nil || !strings.Contains(err.Error(), "wire") {
		t.Fatalf("non-portable remote options: err = %v, want a wire-portability error", err)
	}
}

// TestRunnerStreamRules pins the Stream-source policy: local Runners
// execute them in-process, remote Runners and sweeps reject them with
// actionable errors, and an empty source is caught before execution.
func TestRunnerStreamRules(t *testing.T) {
	ctx := context.Background()
	b, _ := optirand.BenchmarkByName("c432")
	c := b.Build()
	faults := optirand.CollapsedFaults(c)

	remote := optirand.NewRunner(optirand.WithRemote("127.0.0.1:1")) // never dialled
	defer remote.Close()
	src := optirand.NewWeightedLFSR(optirand.UniformWeights(c), 1)
	_, err := remote.Campaign(ctx, optirand.CampaignSpec{
		Circuit: c, Faults: faults, Source: optirand.Stream(src.NextWords), Patterns: 64,
	})
	if err == nil || !strings.Contains(err.Error(), "remote") {
		t.Fatalf("stream on remote Runner: err = %v, want a remote-rejection error", err)
	}

	local := optirand.NewRunner()
	defer local.Close()
	_, err = local.Sweep(ctx, optirand.SweepSpec{
		Patterns: 64,
		Circuits: []optirand.SweepCircuit{{
			Name: "c432", Circuit: c, Faults: faults,
			Weightings: []optirand.SweepWeighting{{Name: "hw", Source: optirand.Stream(src.NextWords)}},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "swept") {
		t.Fatalf("stream in sweep: err = %v, want a sweep-rejection error", err)
	}

	_, err = local.Campaign(ctx, optirand.CampaignSpec{Circuit: c, Faults: faults, Patterns: 64})
	if err == nil || !strings.Contains(err.Error(), "pattern source") {
		t.Fatalf("zero source: err = %v, want a no-pattern-source error", err)
	}
}

// TestRunnerMidBatchCancelAgainstDaemon cancels a streaming sweep
// after its first delivery against a live optirandd: SweepEach must
// return ctx.Err() without draining the grid, and the Runner must
// stay usable afterwards.
func TestRunnerMidBatchCancelAgainstDaemon(t *testing.T) {
	spec, nTasks := testSweepSpec(t)
	r := optirand.NewRunner(
		optirand.WithRemote(startDaemon(t, dist.ServerOptions{Workers: 1, CacheSize: -1})),
		optirand.WithWorkers(1))
	defer r.Close()

	ctx, cancel := context.WithCancel(context.Background())
	delivered := 0
	err := r.SweepEach(ctx, spec, func(int, optirand.TaskResult) {
		delivered++
		if delivered == 1 {
			cancel()
		}
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if delivered >= nTasks {
		t.Fatalf("%d campaigns delivered after mid-batch cancel", delivered)
	}

	// A streaming-transport Runner reports cancellation mid-stream the
	// same way: ctx.Err(), not a transport error.
	streamed := optirand.NewRunner(
		optirand.WithRemote(startDaemon(t, dist.ServerOptions{Workers: 1, CacheSize: -1})),
		optirand.WithRemoteStreaming())
	defer streamed.Close()
	sctx, scancel := context.WithCancel(context.Background())
	sdelivered := 0
	err = streamed.SweepEach(sctx, spec, func(int, optirand.TaskResult) {
		sdelivered++
		if sdelivered == 1 {
			scancel()
		}
	})
	scancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("streamed: err = %v, want context.Canceled", err)
	}
	if sdelivered >= nTasks {
		t.Fatalf("streamed: %d campaigns delivered after mid-stream cancel", sdelivered)
	}

	// Local Runners honor cancellation the same way.
	local := optirand.NewRunner(optirand.WithWorkers(2))
	defer local.Close()
	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := local.Sweep(cancelled, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled local sweep: err = %v, want context.Canceled", err)
	}

	// The remote Runner survives the abandonment.
	res, err := r.Campaign(context.Background(), optirand.CampaignSpec{
		Circuit:  spec.Circuits[0].Circuit,
		Faults:   spec.Circuits[0].Faults,
		Source:   optirand.Weights(optirand.UniformWeights(spec.Circuits[0].Circuit)),
		Patterns: 320,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns != 320 {
		t.Fatalf("post-cancel campaign ran %d patterns, want 320", res.Patterns)
	}
}

// TestRunnerJournalKillAndResume is the crash-resume contract at the
// public API: a sweep killed mid-flight leaves a journal from which a
// *fresh* Runner — a new process, as far as the library can tell —
// completes the sweep byte-identically, replaying the already-done
// prefix instead of recomputing it. Both journal spellings are
// exercised: the killed run names the directory per-spec
// (SweepSpec.Journal), the resuming run inherits it Runner-wide
// (WithJournal).
func TestRunnerJournalKillAndResume(t *testing.T) {
	spec, nTasks := testSweepSpec(t)

	plain := optirand.NewRunner(optirand.WithWorkers(1))
	defer plain.Close()
	ref, err := plain.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	// Incarnation one: journal via the per-spec field, "crash" by
	// cancelling the context after a few deliveries. Every result
	// delivered before the kill is journaled (append-before-deliver).
	dir := t.TempDir()
	spec.Journal = dir
	first := optirand.NewRunner(optirand.WithWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	killed := 0
	err = first.SweepEach(ctx, spec, func(int, optirand.TaskResult) {
		killed++
		if killed == 3 {
			cancel()
		}
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed sweep: err = %v, want context.Canceled", err)
	}
	if killed < 3 || killed >= nTasks {
		t.Fatalf("kill landed after %d/%d deliveries; the resume would prove nothing", killed, nTasks)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	// Incarnation two: a fresh Runner pointed at the same directory via
	// the Runner-wide option finishes the sweep. The journaled prefix
	// replays (zero Elapsed — no campaign ran), the residue executes,
	// and the merged slice is byte-identical to the uninterrupted run.
	spec.Journal = ""
	second := optirand.NewRunner(optirand.WithWorkers(2), optirand.WithJournal(dir))
	defer second.Close()
	got, err := second.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "resumed", ref, got)
	replays := 0
	for _, r := range got {
		if r.Elapsed == 0 {
			replays++
		}
	}
	if replays < killed {
		t.Fatalf("%d zero-elapsed replays, want >= %d (every pre-kill delivery was journaled)", replays, killed)
	}

	// Incarnation three: the journal now holds the whole grid, so a
	// further rerun executes nothing at all.
	third := optirand.NewRunner(optirand.WithWorkers(3), optirand.WithJournal(dir))
	defer third.Close()
	again, err := third.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "full-replay", ref, again)
	for i, r := range again {
		if r.Elapsed != 0 {
			t.Fatalf("full replay executed slot %d (%s) afresh", i, r.Task.Label)
		}
	}
}
