package optirand_test

import (
	"context"
	"fmt"

	"optirand"
)

// Example_runner is the package documentation's "typical flow",
// compiled: build a circuit, optimize its input probabilities on a
// Runner, and confirm by fault simulation. Keeping the doc's snippet
// here means the signatures in the package comment can never drift
// from reality again. Swapping the backend — WithWorkers(8),
// WithCache(n), WithRemote("host:8417") — changes no result bytes.
func Example_runner() {
	ctx := context.Background()
	bench, _ := optirand.BenchmarkByName("s1") // or optirand.ParseBenchFile("mydesign.bench")
	c := bench.Build()
	faults := optirand.CollapsedFaults(c)

	r := optirand.NewRunner() // or WithWorkers(8), WithRemote("host:8417"), …
	defer r.Close()
	opt, err := r.Optimize(ctx, optirand.OptimizeSpec{Circuit: c, Faults: faults})
	if err != nil {
		panic(err)
	}
	cov, err := r.Campaign(ctx, optirand.CampaignSpec{
		Circuit: c, Faults: faults,
		Source:   optirand.Weights(opt.Weights),
		Patterns: 10000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("test length shrank:", opt.FinalN < opt.InitialN)
	fmt.Println("coverage above 90%:", cov.Coverage() > 0.9)
	// Output:
	// test length shrank: true
	// coverage above 90%: true
}

// Example_sweep declares a circuits × weightings × seeds grid once and
// streams its campaigns as they complete. The same spec runs unchanged
// — and byte-identically — on a parallel pool, behind a cache, or
// against a remote optirandd.
func Example_sweep() {
	r := optirand.NewRunner(optirand.WithWorkers(4), optirand.WithCache(128))
	defer r.Close()

	bench, _ := optirand.BenchmarkByName("c432")
	c := bench.Build()
	spec := optirand.SweepSpec{
		BaseSeed:    1987,
		Repetitions: 3,
		Patterns:    500,
		Circuits: []optirand.SweepCircuit{{
			Name: "c432", Circuit: c, Faults: optirand.CollapsedFaults(c),
			Weightings: []optirand.SweepWeighting{
				{Name: "conventional", Source: optirand.Weights(optirand.UniformWeights(c))},
			},
		}},
	}

	streamed := 0
	err := r.SweepEach(context.Background(), spec, func(i int, res optirand.TaskResult) {
		streamed++ // results arrive as they land; i is the grid position
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("campaigns streamed:", streamed)
	// Output: campaigns streamed: 3
}

// Example demonstrates the core flow: build a random-pattern-resistant
// circuit, optimize its input probabilities, and compare the required
// test lengths.
func Example() {
	// An 8-bit equality comparator: the hardest fault needs all eight
	// bit matches at once (probability 2^-8 under conventional
	// patterns).
	b := optirand.NewBuilder("eq8")
	var xn []int
	for i := 0; i < 8; i++ {
		a := b.Input(fmt.Sprintf("a%d", i))
		x := b.Input(fmt.Sprintf("b%d", i))
		xn = append(xn, b.Xnor(fmt.Sprintf("m%d", i), a, x))
	}
	b.Output("eq", b.And("eq", xn...))
	c, err := b.Build()
	if err != nil {
		panic(err)
	}

	faults := optirand.CollapsedFaults(c)
	res, err := optirand.OptimizeWeights(c, faults, optirand.OptimizeOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("reduced the required test length at least 4x:", res.Gain() >= 4)
	fmt.Println("improved:", res.FinalN < res.InitialN)
	// Output:
	// reduced the required test length at least 4x: true
	// improved: true
}

// ExampleParseBenchString shows netlist I/O in the ISCAS bench format.
func ExampleParseBenchString() {
	c, err := optirand.ParseBenchString(`
# name: demo
INPUT(a)
INPUT(b)
OUTPUT(o)
o = NAND(a, b)
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Name, c.NumInputs(), c.NumOutputs())
	// Output: demo 2 1
}

// ExampleSimulateRandomTest runs a seeded weighted random fault
// simulation campaign.
func ExampleSimulateRandomTest() {
	bench, _ := optirand.BenchmarkByName("c432")
	c := bench.Build()
	faults := optirand.CollapsedFaults(c)
	res := optirand.SimulateRandomTest(c, faults, optirand.UniformWeights(c), 5000, 1, 0)
	fmt.Println("coverage above 90%:", res.Coverage() > 0.9)
	// Output: coverage above 90%: true
}

// ExampleGenerateTest shows deterministic pattern generation for a
// single fault.
func ExampleGenerateTest() {
	bench, _ := optirand.BenchmarkByName("s1")
	c := bench.Build()
	faults := optirand.CollapsedFaults(c)
	pattern, status := optirand.GenerateTest(c, faults[0], 0)
	fmt.Println(status, pattern != nil)
	// Output: success true
}

// ExampleRequiredTestLength computes the paper's NORMALIZE result from
// a detection-probability profile.
func ExampleRequiredTestLength() {
	// One hard fault at p=1e-6 dominates two easy ones.
	res := optirand.RequiredTestLength([]float64{1e-6, 0.3, 0.5}, 0.999)
	fmt.Printf("N ≈ %.2g, hard faults: %d\n", res.N, res.HardFaults)
	// Output: N ≈ 6.9e+06, hard faults: 3
}
