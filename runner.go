package optirand

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"optirand/internal/core"
	"optirand/internal/dist"
	"optirand/internal/engine"
	"optirand/internal/sim"
	"optirand/internal/wire"
)

// Runner is a context-aware execution handle over the paper's whole
// pipeline: it runs campaigns, optimizations, and sweep grids on a
// configurable backend — in-process serial, in-process parallel,
// dispatcher-cached, or a remote optirandd service — with bit-identical
// results on every one of them by construction. Configure it with
// functional options:
//
//	local := optirand.NewRunner()                                  // serial, in-process
//	pool  := optirand.NewRunner(optirand.WithWorkers(8))           // bounded worker pool
//	cloud := optirand.NewRunner(optirand.WithRemote("host:8417"),  // optirandd service
//	        optirand.WithCache(1024))                              // + client-side result cache
//
// The same CampaignSpec, OptimizeSpec, or SweepSpec produces the same
// bytes on each of the three — the equivalence contract the internal
// engine.Backend seam enforces — so scaling a workload is a
// constructor change, not a code change.
//
// A Runner is safe for concurrent use. Close releases its worker
// fleet; a plain local Runner holds no resources and Close is then a
// no-op.
type Runner struct {
	workers     int
	simWorkers  int
	simShards   int
	goodMachine GoodMachineMode
	cacheSize   int
	maxAttempts int
	retryDelay  time.Duration
	retryMax    time.Duration
	seed        uint64
	remote      string
	timeout     time.Duration
	timeoutSet  bool
	streaming   bool
	inline      bool
	journalDir  string

	backend engine.Backend
	disp    *dist.Dispatcher
	client  *dist.Client

	// jmu guards journals, the lazily opened per-directory journals
	// (NewRunner cannot fail, so opening waits for first use).
	jmu      sync.Mutex
	journals map[string]*dist.Journal
}

// Option configures a Runner under construction.
type Option func(*Runner)

// WithWorkers bounds the number of campaigns executing concurrently
// (the task-level pool or remote fan-out width). n <= 0 selects
// GOMAXPROCS; the default is 1, the serial reference. Results are
// identical for every value.
func WithWorkers(n int) Option { return func(r *Runner) { r.workers = n } }

// WithSimWorkers shards the fault list inside each campaign across n
// goroutines (<= 1 keeps campaigns serial). Every shard replays the
// identical seeded pattern stream, so results are identical for every
// value; this only trades intra- against inter-campaign parallelism.
// Remote Runners ignore it — the daemon applies its own -simworkers
// policy, which cannot change results either.
func WithSimWorkers(n int) Option { return func(r *Runner) { r.simWorkers = n } }

// WithSimShards shards each campaign's PATTERN stream into n
// contiguous batch ranges simulated concurrently (<= 1 keeps the
// stream unsharded; overrides WithSimWorkers when set) — the right
// cut for small-fault/large-pattern campaigns, where fault shards
// would be too narrow to pay for their duplicated good machines.
// Per-fault first detections merge as the minimum across ranges, so
// results are identical for every value. Remote Runners ignore it —
// the daemon applies its own scheduling policy, which cannot change
// results either.
func WithSimShards(n int) Option { return func(r *Runner) { r.simShards = n } }

// WithGoodMachine selects the good-machine strategy for fault-sharded
// campaigns: replay per worker (the default), one shared good
// simulation per batch (GoodMachineShared — a win on fanout-heavy
// circuits), or an automatic cost-based pick (GoodMachineAuto).
// Results are identical for every mode; remote Runners ignore it.
func WithGoodMachine(m GoodMachineMode) Option { return func(r *Runner) { r.goodMachine = m } }

// WithRemote executes campaigns, sweeps, and optimizations on an
// optirandd service at addr (host:port or URL) instead of in-process.
// WithWorkers then bounds the number of concurrent requests; transient
// network failures are retried (deterministic 4xx rejections fail
// fast).
func WithRemote(addr string) Option { return func(r *Runner) { r.remote = addr } }

// WithRemoteTimeout bounds each HTTP request against a remote Runner
// (default 10 minutes; 0 disables the timeout — campaigns are long
// requests by design, and context cancellation still applies).
func WithRemoteTimeout(d time.Duration) Option {
	return func(r *Runner) { r.timeout = d; r.timeoutSet = true }
}

// WithRemoteStreaming routes a remote Runner's batches through single
// /v1/sweep requests instead of per-task /v1/campaign fan-out: the
// daemon's own dispatcher spreads the batch over its fleet, and
// SweepEach consumes the daemon's streaming (NDJSON) response, so
// per-task results cross the network as they complete. Results are
// bit-identical to every other backend. The trade: one round trip per
// batch, but WithWorkers, WithCache, and WithMaxAttempts do not apply
// (the daemon's fleet, cache, and retry policy govern). Because one
// request now spans a whole batch, the default per-request timeout is
// disabled — interrupt with context cancellation, or bound requests
// explicitly with WithRemoteTimeout. Ignored for in-process Runners.
func WithRemoteStreaming() Option { return func(r *Runner) { r.streaming = true } }

// WithInlineCircuits disables circuit interning on a remote Runner:
// every task carries its circuit and fault list inline instead of by
// content address. Interning is purely a transport optimization
// (results are identical either way, and the client already falls
// back to inline against daemons without blob support); this option
// exists for debugging and measurement. Ignored for in-process
// Runners.
func WithInlineCircuits() Option { return func(r *Runner) { r.inline = true } }

// WithJournal makes the Runner's sweeps and batches resumable:
// completed results are appended to a journal (file sweep.journal in
// dir, created as needed) as they land, keyed by task content address,
// and any later run over the same journal — same process or a
// restarted one — replays journaled results instead of recomputing,
// executing only the residue. Because journal keys are task identity
// hashes, replayed results are byte-identical to fresh execution, and
// a resumed sweep is indistinguishable from an uninterrupted one. A
// SweepSpec.Journal overrides dir per sweep. The journal survives the
// Runner (Close syncs it); delete the directory to start over.
func WithJournal(dir string) Option { return func(r *Runner) { r.journalDir = dir } }

// WithCache keeps a content-addressed result cache of up to n
// campaigns (keyed by task identity — circuit, faults, weights,
// patterns, seed — never by label or scheduling): resubmitting a
// campaign returns the identical bytes without executing. The cache
// fronts whichever backend the Runner uses, and enables in-flight
// dedup: concurrent submissions of equal tasks execute once.
func WithCache(n int) Option { return func(r *Runner) { r.cacheSize = n } }

// WithSeed sets the Runner's default PRNG seed, used when a
// CampaignSpec.Seed or SweepSpec.BaseSeed is 0 (the default default
// is 1).
func WithSeed(seed uint64) Option { return func(r *Runner) { r.seed = seed } }

// WithMaxAttempts bounds executions per task before a batch fails
// (default 3); attempts beyond the first migrate to whichever worker
// frees up. Only meaningful for Runners with a dispatcher (remote or
// cached).
func WithMaxAttempts(n int) Option { return func(r *Runner) { r.maxAttempts = n } }

// WithRetryBackoff shapes the jittered exponential backoff between a
// task's retry attempts: base is the first-retry delay (0, the
// default, requeues immediately) and max caps the growth — and caps
// how long a server's Retry-After hint can hold a retry back (max <= 0
// selects the default, 32x base). Retry timing never changes results;
// only meaningful for Runners with a dispatcher (remote or cached).
func WithRetryBackoff(base, max time.Duration) Option {
	return func(r *Runner) { r.retryDelay = base; r.retryMax = max }
}

// NewRunner builds a Runner from functional options. The zero-option
// Runner is the serial in-process reference every other configuration
// is bit-identical to.
func NewRunner(opts ...Option) *Runner {
	r := &Runner{seed: 1, workers: 1}
	for _, o := range opts {
		o(r)
	}
	var cache *dist.Cache
	if r.cacheSize > 0 {
		cache = dist.NewCache(r.cacheSize)
	}
	switch {
	case r.remote != "":
		r.client = dist.NewClient(r.remote)
		if r.timeoutSet {
			r.client.HTTP.Timeout = r.timeout
		}
		r.client.DisableIntern = r.inline
		if r.streaming {
			if !r.timeoutSet {
				// One request now spans a whole batch, so the default
				// 10-minute per-request bound — sized for single
				// campaigns — would cut long sweeps mid-stream.
				r.client.HTTP.Timeout = 0
			}
			r.backend = dist.Service{Client: r.client}
			break
		}
		r.disp = dist.NewDispatcher(dist.RemoteExecutor(r.client), dist.Options{
			Workers:       r.workers,
			MaxAttempts:   r.maxAttempts,
			RetryDelay:    r.retryDelay,
			RetryMaxDelay: r.retryMax,
			Cache:         cache,
		})
		r.backend = r.disp
	case cache != nil:
		r.disp = dist.NewDispatcher(dist.LocalExecutor, dist.Options{
			Workers:       r.workers,
			MaxAttempts:   r.maxAttempts,
			RetryDelay:    r.retryDelay,
			RetryMaxDelay: r.retryMax,
			Cache:         cache,
		})
		r.backend = r.disp
	default:
		r.backend = engine.Local{Workers: r.workers}
	}
	return r
}

// Close releases the Runner's worker fleet, if it has one, and syncs
// and closes any journals it opened. Finish in-flight calls first;
// Close is idempotent.
func (r *Runner) Close() error {
	if r.disp != nil {
		r.disp.Close()
	}
	r.jmu.Lock()
	journals := r.journals
	r.journals = nil
	r.jmu.Unlock()
	var firstErr error
	for _, j := range journals {
		if err := j.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// journal returns the Runner's open journal for dir, opening (and
// resuming) it on first use. Journals are cached per directory and
// closed by Close.
func (r *Runner) journal(dir string) (*dist.Journal, error) {
	r.jmu.Lock()
	defer r.jmu.Unlock()
	if j, ok := r.journals[dir]; ok {
		return j, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("optirand: journal directory: %w", err)
	}
	j, err := dist.OpenJournal(filepath.Join(dir, "sweep.journal"))
	if err != nil {
		return nil, err
	}
	if r.journals == nil {
		r.journals = make(map[string]*dist.Journal)
	}
	r.journals[dir] = j
	return j, nil
}

// runSource is the execution core behind Sweep, SweepEach, and Batch:
// windowed streaming submission over the Runner's backend — tasks are
// generated, validated, and submitted in bounded windows, never
// materialized whole — consulting and feeding the resolved journal
// (specDir overriding the Runner's WithJournal directory) when one is
// configured.
func (r *Runner) runSource(ctx context.Context, specDir string, src engine.TaskSource, fn func(i int, res TaskResult)) error {
	dir := specDir
	if dir == "" {
		dir = r.journalDir
	}
	var j *dist.Journal
	if dir != "" {
		var err error
		if j, err = r.journal(dir); err != nil {
			return err
		}
	}
	return dist.RunSource(ctx, r.backend, src, dist.SourceOptions{Journal: j}, fn)
}

// Remote reports the service address the Runner executes on ("" for
// in-process Runners).
func (r *Runner) Remote() string { return r.remote }

// Campaign runs one fault-simulation campaign described by spec and
// reports the achieved coverage. Weights and Mixture campaigns run on
// the Runner's backend (pool, cache, or service) and are bit-identical
// across all of them; Stream campaigns execute serially in-process
// (the source is an opaque callback) and are rejected by remote
// Runners.
func (r *Runner) Campaign(ctx context.Context, spec CampaignSpec) (*CampaignResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Source.IsStream() {
		if r.remote != "" {
			return nil, fmt.Errorf("optirand: campaign %q: Stream sources cannot run on a remote Runner (a callback is not serializable); use a local Runner", spec.label())
		}
		if spec.Circuit == nil {
			return nil, fmt.Errorf("optirand: campaign %q: nil circuit", spec.label())
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return sim.RunCampaignSource(spec.Circuit, spec.Faults, spec.Source.next, spec.Patterns, spec.CurveStep), nil
	}
	results, err := r.Batch(ctx, []CampaignSpec{spec})
	if err != nil {
		return nil, err
	}
	return results[0].Campaign, nil
}

// Batch runs several campaign specs as one submission: they fan out
// over the Runner's backend and results return positionally
// (results[i] answers specs[i]). Use Sweep for grids whose seeds
// should derive from task identity; use Batch when each spec carries
// its own explicit seed.
func (r *Runner) Batch(ctx context.Context, specs []CampaignSpec) ([]TaskResult, error) {
	tasks := make([]*Task, len(specs))
	for i := range specs {
		t, err := specs[i].task(r)
		if err != nil {
			return nil, err
		}
		tasks[i] = t
	}
	results := make([]TaskResult, len(tasks))
	err := r.runSource(ctx, "", engine.SliceSource(tasks), func(i int, res TaskResult) {
		results[i] = res
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Sweep runs the grid on the Runner's backend and collects the whole
// result slice. Results are positional in circuit-major,
// weighting-middle, repetition-minor order (the expansion order of
// the spec) and bit-identical for every backend and worker count.
// Tasks are generated, validated, and submitted as a bounded-memory
// stream — only the result slice is grid-sized; use SweepEach to
// stream results too.
func (r *Runner) Sweep(ctx context.Context, spec SweepSpec) ([]TaskResult, error) {
	src, err := spec.source(r)
	if err != nil {
		return nil, err
	}
	results := make([]TaskResult, src.NumTasks())
	err = r.runSource(ctx, spec.Journal, src, func(i int, res TaskResult) {
		results[i] = res
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SweepEach is Sweep's streaming variant: fn observes each task's
// result as it lands (journal replays and cache hits first within
// their window, executed campaigns in completion order) instead of
// waiting for the whole grid — and the grid itself streams, so client
// memory stays constant in grid size: tasks are generated and
// submitted in bounded windows, never materialized as one slice. fn
// is called serially from the calling goroutine with the task's
// position i in the grid's expansion order; collecting results by i
// reproduces Sweep's slice exactly. On cancellation SweepEach
// abandons queued work promptly and returns ctx.Err(); results
// already delivered remain valid (and, with a journal, survive for
// the resumed run).
func (r *Runner) SweepEach(ctx context.Context, spec SweepSpec, fn func(i int, res TaskResult)) error {
	src, err := spec.source(r)
	if err != nil {
		return err
	}
	return r.runSource(ctx, spec.Journal, src, fn)
}

// Optimize runs the paper's OPTIMIZE procedure for spec — coordinate
// descent on J_N with per-coordinate Newton minimization — in-process
// or, for a remote Runner, on the optirandd service (identical
// weights either way; the wire carries only the portable option
// subset, so remote optimization rejects advanced OptimizeOptions).
func (r *Runner) Optimize(ctx context.Context, spec OptimizeSpec) (*OptimizeResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.client == nil {
		return core.Optimize(spec.Circuit, spec.Faults, spec.Options)
	}
	o := spec.Options
	if o.Alpha != 0 || o.MinWeight != 0 || o.MaxWeight != 0 || o.InitialWeights != nil ||
		o.HardFaultFloor != 0 || o.PadFactor != 0 || o.RedundancyFloor != 0 ||
		o.NewtonIters != 0 || o.Jitter != 0 || o.UseBisection || o.DisableIncremental {
		return nil, fmt.Errorf("optirand: remote optimization carries only Confidence, Quantize, MaxSweeps, and Workers over the wire; run advanced OptimizeOptions on a local Runner")
	}
	if spec.Circuit == nil {
		return nil, fmt.Errorf("optirand: optimize: nil circuit")
	}
	start := time.Now()
	out, err := r.client.Optimize(ctx, &wire.OptimizeRequest{
		Circuit:    *wire.FromCircuit(spec.Circuit),
		Faults:     wire.FromFaults(spec.Faults),
		Confidence: o.Confidence,
		Quantize:   o.Quantize,
		MaxSweeps:  o.MaxSweeps,
		Workers:    o.Workers,
	})
	if err != nil {
		return nil, err
	}
	// History does not travel over the wire; every result-determining
	// field does. Elapsed is stamped client-side (wall time of the
	// round trip, network included).
	return &OptimizeResult{
		Weights:            out.Weights,
		InitialN:           out.InitialN,
		FinalN:             out.FinalN,
		Sweeps:             out.Sweeps,
		Analyses:           out.Analyses,
		SuspectedRedundant: out.SuspectedRedundant,
		Elapsed:            time.Since(start),
	}, nil
}
