// Package optirand computes optimized input probabilities for weighted
// random testing of combinational circuits, reproducing H.-J.
// Wunderlich, "On Computing Optimized Input Probabilities for Random
// Tests", 24th Design Automation Conference (DAC), 1987.
//
// A conventional random test drives every primary input with
// probability 0.5; circuits with wide rarely-satisfied cones (equality
// comparators, dividers) then need astronomically many patterns. This
// library computes one optimized probability per primary input that
// minimizes the objective J_N(X) = Σ_f exp(-N·p_f(X)) over the fault
// set, shrinking the required test length by orders of magnitude.
//
// The typical flow — kept compiling by Example_runner in
// example_test.go, so it cannot drift from the real signatures:
//
//	c, _ := optirand.ParseBenchFile("mydesign.bench") // or a built-in benchmark
//	faults := optirand.CollapsedFaults(c)
//	r := optirand.NewRunner() // or WithWorkers(8), WithRemote("host:8417"), …
//	defer r.Close()
//	opt, _ := r.Optimize(ctx, optirand.OptimizeSpec{Circuit: c, Faults: faults})
//	cov, _ := r.Campaign(ctx, optirand.CampaignSpec{
//		Circuit: c, Faults: faults,
//		Source:   optirand.Weights(opt.Weights),
//		Patterns: 10000,
//	})
//	fmt.Println(opt.FinalN, cov.Coverage())
//
// Runner is the execution surface: one handle that runs campaigns,
// optimizations, and sweep grids on an in-process pool, behind a
// content-addressed cache, or on a remote optirandd service — with
// bit-identical results on every backend. The pre-Runner entry points
// (SimulateRandomTest and friends) remain as deprecated wrappers.
//
// The heavy lifting lives in internal packages: gate-level circuit
// model, bench-format I/O, 64-way parallel fault simulation, BDD-exact
// and PROTEST-style probability analysis, the NORMALIZE test-length
// computation, the coordinate-descent optimizer, LFSR-based weighted
// pattern hardware models, and generators for the paper's twelve
// evaluation circuits. This package is the stable facade over them.
package optirand

import (
	"context"
	"io"
	"os"
	"runtime"

	"optirand/internal/atpg"
	"optirand/internal/bench"
	"optirand/internal/circuit"
	"optirand/internal/core"
	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/lfsr"
	"optirand/internal/prob"
	"optirand/internal/sim"
	"optirand/internal/testability"
	"optirand/internal/testlen"
)

// Re-exported core types. The aliases keep one public import path while
// the implementation stays in internal packages.
type (
	// Circuit is a gate-level combinational network.
	Circuit = circuit.Circuit
	// GateType enumerates gate functions (AND, NAND, XOR, …).
	GateType = circuit.GateType
	// Builder constructs circuits programmatically.
	Builder = circuit.Builder
	// Fault is a single stuck-at fault on a stem or branch line.
	Fault = fault.Fault
	// FaultUniverse is the collapsed fault universe of a circuit.
	FaultUniverse = fault.Universe
	// OptimizeOptions configures the optimizer (confidence, clamps,
	// quantization grid, …). The zero value selects paper defaults.
	OptimizeOptions = core.Options
	// OptimizeResult reports optimized weights, the initial and final
	// required test lengths, and per-sweep history.
	OptimizeResult = core.Result
	// CampaignResult reports a fault-simulation campaign (coverage,
	// first-detection indices, coverage curve).
	CampaignResult = sim.CampaignResult
	// CoveragePoint is one sample of a coverage curve.
	CoveragePoint = sim.CoveragePoint
	// AdaptiveInfo records the round provenance of a block-adaptive
	// campaign (CampaignResult.Adaptive; see the Adaptive source).
	AdaptiveInfo = sim.AdaptiveInfo
	// RoundStat is one adaptive round's boundary state.
	RoundStat = sim.RoundStat
	// Benchmark describes one built-in evaluation circuit with its
	// paper reference data.
	Benchmark = gen.Benchmark
	// TestLength reports NORMALIZE results (N, hard-fault count,
	// undetectable count).
	TestLength = testlen.Result
	// Analyzer is the PROTEST-style testability analyzer.
	Analyzer = testability.Analyzer
	// WeightedLFSR is the hardware-faithful weighted pattern source.
	WeightedLFSR = lfsr.WeightedSource
)

// Gate type constants, re-exported for Builder users.
const (
	Input  = circuit.Input
	Buf    = circuit.Buf
	Not    = circuit.Not
	And    = circuit.And
	Nand   = circuit.Nand
	Or     = circuit.Or
	Nor    = circuit.Nor
	Xor    = circuit.Xor
	Xnor   = circuit.Xnor
	Const0 = circuit.Const0
	Const1 = circuit.Const1
)

// DefaultConfidence is the confidence level ε used throughout the
// experiments (Q = -ln ε ≈ 10^-3).
const DefaultConfidence = testlen.DefaultConfidence

// NewBuilder starts a programmatic circuit description.
func NewBuilder(name string) *Builder { return circuit.NewBuilder(name) }

// ParseBench reads a netlist in the ISCAS bench format.
func ParseBench(r io.Reader) (*Circuit, error) { return bench.Parse(r) }

// ParseBenchString parses a bench netlist held in a string.
func ParseBenchString(s string) (*Circuit, error) { return bench.ParseString(s) }

// ParseBenchFile reads a .bench netlist from disk.
func ParseBenchFile(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bench.Parse(f)
}

// WriteBench emits the circuit in bench format.
func WriteBench(w io.Writer, c *Circuit) error { return bench.Write(w, c) }

// Benchmarks returns the twelve built-in evaluation circuits of the
// paper (S1, S2, and the C432…C7552 analogues) in Table 1 order.
func Benchmarks() []Benchmark { return gen.Benchmarks() }

// MarkedBenchmarks returns the four random-pattern-resistant circuits
// the paper optimizes (S1, S2, C2670, C7552).
func MarkedBenchmarks() []Benchmark { return gen.Marked() }

// BenchmarkByName looks up a built-in circuit ("s1", "c7552", …).
func BenchmarkByName(name string) (Benchmark, bool) { return gen.ByName(name) }

// Faults returns the full collapsed fault universe of c.
func Faults(c *Circuit) *FaultUniverse { return fault.New(c) }

// CollapsedFaults returns the equivalence-collapsed stuck-at fault list
// of c — the fault model F of the paper (primary-input faults kept as
// class representatives).
func CollapsedFaults(c *Circuit) []Fault { return fault.New(c).Reps }

// UniformWeights returns the conventional random test's weight vector:
// probability 0.5 for every primary input of c.
func UniformWeights(c *Circuit) []float64 {
	w := make([]float64, c.NumInputs())
	for i := range w {
		w[i] = 0.5
	}
	return w
}

// NewAnalyzer creates a PROTEST-style testability analyzer for c.
func NewAnalyzer(c *Circuit) *Analyzer { return testability.NewAnalyzer(c) }

// EstimateDetectProbs estimates the detection probability of each fault
// under the given per-input 1-probabilities, using the analytic
// (PROTEST-style) estimator.
func EstimateDetectProbs(c *Circuit, faults []Fault, weights []float64) []float64 {
	return testability.NewAnalyzer(c).DetectProbs(weights, faults)
}

// ExactDetectProbs computes exact detection probabilities by BDD
// weighted model counting (Parker–McCluskey). Exponential worst case —
// intended for small circuits and validation.
func ExactDetectProbs(c *Circuit, faults []Fault, weights []float64) []float64 {
	return prob.ExactDetectProbs(c, faults, weights)
}

// RequiredTestLength computes the minimal random-test length achieving
// the given confidence for the fault detection probabilities, via the
// paper's NORMALIZE procedure.
func RequiredTestLength(probs []float64, confidence float64) TestLength {
	return testlen.Normalize(probs, confidence)
}

// ExpectedCoverage predicts the fault coverage of an n-pattern random
// test from detection probabilities.
func ExpectedCoverage(probs []float64, n float64) float64 {
	return testlen.ExpectedCoverage(probs, n)
}

// mustCampaign backs the deprecated facade wrappers: it runs one spec
// on a throwaway local Runner and panics on spec errors — the
// pre-Runner functions had no error returns, and their failure mode
// for invalid input (mismatched weight lengths, nil circuits) was a
// panic deep inside the simulator anyway.
func mustCampaign(r *Runner, spec CampaignSpec) *CampaignResult {
	defer r.Close()
	res, err := r.Campaign(context.Background(), spec)
	if err != nil {
		panic(err)
	}
	return res
}

// OptimizeWeights runs the paper's OPTIMIZE procedure: coordinate
// descent on J_N with per-coordinate Newton minimization, returning the
// optimized per-input probabilities.
//
// Deprecated: use Runner.Optimize with an OptimizeSpec, which also
// runs on remote backends. This wrapper delegates to a local Runner.
func OptimizeWeights(c *Circuit, faults []Fault, opts OptimizeOptions) (*OptimizeResult, error) {
	r := NewRunner()
	defer r.Close()
	return r.Optimize(context.Background(), OptimizeSpec{Circuit: c, Faults: faults, Options: opts})
}

// SimulateRandomTest fault-simulates nPatterns weighted random patterns
// (64-way parallel, event-driven, with fault dropping) and reports the
// achieved coverage. curveStep > 0 additionally samples the coverage
// curve every curveStep patterns.
//
// Deprecated: use Runner.Campaign with a CampaignSpec whose Source is
// Weights(weights). This wrapper delegates to a local Runner.
func SimulateRandomTest(c *Circuit, faults []Fault, weights []float64, nPatterns int, seed uint64, curveStep int) *CampaignResult {
	return mustCampaign(NewRunner(WithSeed(seed)), CampaignSpec{
		Circuit: c, Faults: faults, Source: Weights(weights),
		Patterns: nPatterns, Seed: seed, CurveStep: curveStep,
	})
}

// SimulateRandomTestWorkers is SimulateRandomTest with the fault list
// sharded across workers goroutines (<= 0 selects GOMAXPROCS). Every
// worker replays the identical seeded pattern stream against its
// shard, so the result is bit-identical to the serial campaign for
// every worker count.
//
// Deprecated: use Runner.Campaign on a Runner built with
// WithSimWorkers(workers). This wrapper delegates to exactly that.
func SimulateRandomTestWorkers(c *Circuit, faults []Fault, weights []float64, nPatterns int, seed uint64, curveStep, workers int) *CampaignResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return mustCampaign(NewRunner(WithSeed(seed), WithSimWorkers(workers)), CampaignSpec{
		Circuit: c, Faults: faults, Source: Weights(weights),
		Patterns: nPatterns, Seed: seed, CurveStep: curveStep,
	})
}

// MultiDistributionResult reports the §5.3 extension: several weight
// sets serving a partitioned fault set.
type MultiDistributionResult = core.MultiResult

// OptimizeMultiDistribution implements the extension the paper proposes
// for "pathological" circuits (§5.3): when pairs of hard faults have
// test sets far apart in Hamming distance, no single distribution
// serves both; the fault set is partitioned and one distribution is
// optimized per part. Patterns are then drawn from the equal mixture
// (see SimulateRandomTestMixture).
func OptimizeMultiDistribution(c *Circuit, faults []Fault, maxParts int, opts OptimizeOptions) (*MultiDistributionResult, error) {
	return core.OptimizeMulti(c, faults, maxParts, opts)
}

// SimulateRandomTestMixture fault-simulates patterns drawn from several
// weight sets in rotation (one 64-pattern batch per set).
//
// Deprecated: use Runner.Campaign with a CampaignSpec whose Source is
// Mixture(weightSets...). This wrapper delegates to a local Runner.
func SimulateRandomTestMixture(c *Circuit, faults []Fault, weightSets [][]float64, nPatterns int, seed uint64, curveStep int) *CampaignResult {
	return mustCampaign(NewRunner(WithSeed(seed)), CampaignSpec{
		Circuit: c, Faults: faults, Source: Mixture(weightSets...),
		Patterns: nPatterns, Seed: seed, CurveStep: curveStep,
	})
}

// SimulateRandomTestMixtureWorkers is SimulateRandomTestMixture with
// the fault list sharded across workers goroutines (<= 0 selects
// GOMAXPROCS); bit-identical to the serial mixture campaign.
//
// Deprecated: use Runner.Campaign on a Runner built with
// WithSimWorkers(workers). This wrapper delegates to exactly that.
func SimulateRandomTestMixtureWorkers(c *Circuit, faults []Fault, weightSets [][]float64, nPatterns int, seed uint64, curveStep, workers int) *CampaignResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return mustCampaign(NewRunner(WithSeed(seed), WithSimWorkers(workers)), CampaignSpec{
		Circuit: c, Faults: faults, Source: Mixture(weightSets...),
		Patterns: nPatterns, Seed: seed, CurveStep: curveStep,
	})
}

// SimulateWithSource fault-simulates patterns from an external source:
// next is called once per 64-pattern batch and must fill one word per
// primary input (bit k of word i = input i in pattern k). Use it to
// drive the simulation from hardware models such as NewWeightedLFSR.
//
// Deprecated: use Runner.Campaign with a CampaignSpec whose Source is
// Stream(next). This wrapper delegates to a local Runner.
func SimulateWithSource(c *Circuit, faults []Fault, next func(dst []uint64), nPatterns, curveStep int) *CampaignResult {
	return mustCampaign(NewRunner(), CampaignSpec{
		Circuit: c, Faults: faults, Source: Stream(next),
		Patterns: nPatterns, CurveStep: curveStep,
	})
}

// NewWeightedLFSR builds the hardware-faithful weighted pattern source:
// per-input LFSRs with weighting networks on the 1/16 probability grid
// (the BIST implementation of the paper's §5.2).
func NewWeightedLFSR(weights []float64, seed uint64) *WeightedLFSR {
	return lfsr.NewWeightedSource(weights, seed)
}

// QuantizeWeight rounds a probability to the 1/16 hardware grid.
func QuantizeWeight(p float64) float64 { return lfsr.QuantizeWeight(p) }

// MISR is a multiple-input signature register — the response-compaction
// half of a BILBO-style self-test module.
type MISR = lfsr.MISR

// NewMISR builds an n-bit signature register with a primitive feedback
// polynomial (aliasing probability 2^-n).
func NewMISR(n int) *MISR { return lfsr.NewMISR(n) }

// Deterministic test generation (PODEM), used for the §5.2 hybrid flow:
// optimized random patterns first, deterministic top-off for the
// residual faults.
type (
	// TestPattern is a partially specified deterministic pattern.
	TestPattern = atpg.Pattern
	// ATPGStatus is the outcome of one generation attempt
	// (success / untestable / aborted).
	ATPGStatus = atpg.Status
	// ATPGResult is a batch generation report.
	ATPGResult = atpg.Result
	// HybridResult reports a random + top-off campaign.
	HybridResult = atpg.HybridResult
)

// ATPG status values.
const (
	ATPGSuccess    = atpg.Success
	ATPGUntestable = atpg.Untestable
	ATPGAborted    = atpg.Aborted
)

// GenerateTest runs PODEM for a single fault, returning a detecting
// pattern, a redundancy proof, or an abort at the backtrack limit
// (maxBacktracks <= 0 selects the default).
func GenerateTest(c *Circuit, f Fault, maxBacktracks int) (*TestPattern, ATPGStatus) {
	g := atpg.NewGenerator(c)
	if maxBacktracks > 0 {
		g.MaxBacktracks = maxBacktracks
	}
	return g.Generate(f)
}

// GenerateTests runs PODEM over a fault list.
func GenerateTests(c *Circuit, faults []Fault, maxBacktracks int) *ATPGResult {
	return atpg.GenerateAll(c, faults, maxBacktracks)
}

// HybridTest runs the paper §5.2 flow: nRandom weighted random patterns
// followed by deterministic top-off patterns for every fault the random
// phase missed, with simulation-verified crediting.
func HybridTest(c *Circuit, faults []Fault, weights []float64, nRandom int, seed uint64, maxBacktracks int) *HybridResult {
	return atpg.TopOff(c, faults, weights, nRandom, seed, maxBacktracks)
}

// EvalOutputsWithFault evaluates the faulty machine for one input
// assignment — the scalar reference semantics, useful for signature
// computation and debugging.
func EvalOutputsWithFault(c *Circuit, f Fault, inputs []bool) []bool {
	return sim.EvalOutputsWithFault(c, f, inputs)
}

// NewStafanEstimator returns the simulation-counting detection
// probability estimator (STAFAN), an alternative ANALYSIS provider the
// paper names; words 64-pattern batches are counted (0 = default).
func NewStafanEstimator(c *Circuit, words int, seed uint64) interface {
	DetectProbs(weights []float64, faults []Fault) []float64
} {
	return &testability.Stafan{Circuit: c, Words: words, Seed: seed}
}
