package optirand

import (
	"fmt"

	"optirand/internal/adapt"
	"optirand/internal/engine"
	"optirand/internal/sim"
)

// Re-exported engine types: a Task is one fully described
// fault-simulation campaign, a TaskResult pairs it with its outcome.
// Runner.Sweep and Runner.Batch return TaskResults positionally.
type (
	// Task is one executable campaign (circuit × faults × weight sets
	// × pattern budget × seed). Specs compile to Tasks; inspect
	// TaskResult.Task to identify a result.
	Task = engine.Task
	// TaskResult pairs a Task with its campaign outcome and wall time.
	TaskResult = engine.TaskResult
)

// GoodMachineMode selects how fault-sharded campaigns obtain their
// good-machine values (see WithGoodMachine). Every mode is
// bit-identical to the serial campaign; the choice is purely a cost
// trade.
type GoodMachineMode = sim.GoodMachine

const (
	// GoodMachineReplay duplicates the good simulation per fault-shard
	// worker (the default: zero synchronization).
	GoodMachineReplay GoodMachineMode = sim.GoodMachineReplay
	// GoodMachineShared runs one good simulation per 64-pattern batch
	// and fans detection out across workers against it.
	GoodMachineShared GoodMachineMode = sim.GoodMachineShared
	// GoodMachineAuto picks between the two by a simple cost model.
	GoodMachineAuto GoodMachineMode = sim.GoodMachineAuto
)

// PatternSource selects where a campaign's random patterns come from.
// The zero value is invalid; construct one with Weights (a single
// weight set), Mixture (the §5.3 rotation over several weight sets),
// or Stream (an external 64-pattern batch generator, e.g. a hardware
// LFSR model).
//
// Weights and Mixture sources are pure data: they travel over the
// wire, shard across fault-list workers, and content-address into the
// result cache, so campaigns using them are bit-identical on every
// Runner backend. A Stream source is an opaque callback — it cannot be
// serialized, replayed, or cached, so stream campaigns always execute
// serially in-process and are rejected by remote Runners and sweeps.
type PatternSource struct {
	sets     [][]float64
	next     func(dst []uint64)
	adaptive *adapt.Config
}

// Weights draws every pattern from one weight set: weights[i] is the
// probability that primary input i is 1.
func Weights(weights []float64) PatternSource {
	return PatternSource{sets: [][]float64{weights}}
}

// Mixture rotates 64-pattern batches through several weight sets —
// the paper's §5.3 extension for partitioned fault sets (see
// OptimizeMultiDistribution).
func Mixture(weightSets ...[]float64) PatternSource {
	return PatternSource{sets: weightSets}
}

// Stream draws patterns from an external source: next is called once
// per 64-pattern batch and must fill one word per primary input (bit k
// of word i = input i in pattern k). Use it to drive campaigns from
// hardware models such as NewWeightedLFSR.
func Stream(next func(dst []uint64)) PatternSource {
	return PatternSource{next: next}
}

// Adaptive wraps a Weights or Mixture source in the block-adaptive
// control loop (internal/adapt): the campaign runs blocks of patterns
// and re-weights at each block boundary from the still-undetected
// fault residue. A Weights source re-optimizes its single set on the
// residue (strategy "reopt"); a Mixture source's sets become the arms
// of a deterministic multi-armed bandit (strategy "bandit"); options
// override the defaults. All updates happen only at block boundaries
// with seeds derived from the campaign seed and round index, so an
// adaptive campaign — like every other campaign — is a pure function
// of (circuit, faults, config, seed), byte-identical across worker
// counts and across local, remote, and federated backends. Stream
// sources cannot be adaptive (the loop must own the pattern stream).
func Adaptive(src PatternSource, opts ...AdaptiveOption) PatternSource {
	cfg := &adapt.Config{}
	for _, o := range opts {
		o(cfg)
	}
	src.adaptive = cfg
	return src
}

// AdaptiveOption configures an Adaptive source.
type AdaptiveOption func(*adapt.Config)

// AdaptiveReopt selects residual re-optimization: at each block
// boundary the paper's optimize step re-runs restricted to the alive
// fault set, seeded from the current weights. Requires a single-set
// (Weights) source. This is the default for Weights sources.
func AdaptiveReopt() AdaptiveOption {
	return func(c *adapt.Config) { c.Strategy = adapt.StrategyReopt }
}

// AdaptiveBandit selects the deterministic multi-armed bandit over the
// source's weight sets: epsilon 0 plays UCB1, epsilon in (0,1) plays
// seeded epsilon-greedy. Requires a Mixture source with at least two
// sets. Bandit with epsilon 0 is the default for Mixture sources.
func AdaptiveBandit(epsilon float64) AdaptiveOption {
	return func(c *adapt.Config) {
		c.Strategy = adapt.StrategyBandit
		c.Epsilon = epsilon
	}
}

// AdaptiveBlock sets the per-round pattern block (default 256).
func AdaptiveBlock(patterns int) AdaptiveOption {
	return func(c *adapt.Config) { c.BlockPatterns = patterns }
}

// AdaptiveStall sets how many consecutive zero-detection rounds
// terminate the loop (default 3).
func AdaptiveStall(rounds int) AdaptiveOption {
	return func(c *adapt.Config) { c.StallRounds = rounds }
}

// AdaptiveTarget stops the loop once coverage reaches target (in
// (0,1]; 0, the default, runs to the pattern budget).
func AdaptiveTarget(coverage float64) AdaptiveOption {
	return func(c *adapt.Config) { c.TargetCoverage = coverage }
}

// AdaptiveReoptSweeps caps each residual re-optimization's
// coordinate-descent sweeps (default 4).
func AdaptiveReoptSweeps(n int) AdaptiveOption {
	return func(c *adapt.Config) { c.ReoptMaxSweeps = n }
}

// IsStream reports whether the source is an external batch generator.
func (s PatternSource) IsStream() bool { return s.next != nil }

// IsAdaptive reports whether the source runs the block-adaptive loop.
func (s PatternSource) IsAdaptive() bool { return s.adaptive != nil }

// WeightSets returns the source's weight sets (nil for Stream
// sources). The slice is not copied; treat it as read-only.
func (s PatternSource) WeightSets() [][]float64 { return s.sets }

// adaptiveConfig returns a private copy of the source's adaptive
// config, so tasks compiled from one source cannot alias each other's.
func (s PatternSource) adaptiveConfig() *adapt.Config {
	if s.adaptive == nil {
		return nil
	}
	cfg := *s.adaptive
	return &cfg
}

// CampaignSpec declares one fault-simulation campaign. Zero-valued
// fields select defaults: Label defaults to the circuit name, Seed 0
// selects the Runner's seed (WithSeed, default 1).
type CampaignSpec struct {
	// Label identifies the campaign in TaskResults and error messages.
	Label string
	// Circuit is the netlist under test.
	Circuit *Circuit
	// Faults is the campaign's fault list (typically CollapsedFaults).
	Faults []Fault
	// Source supplies the random patterns: Weights, Mixture, or
	// Stream.
	Source PatternSource
	// Patterns is the pattern budget.
	Patterns int
	// Seed makes the campaign reproducible; 0 selects the Runner's
	// seed. Ignored for Stream sources (the stream owns its state).
	Seed uint64
	// CurveStep > 0 samples the coverage curve every CurveStep
	// patterns.
	CurveStep int
}

// task compiles the spec into an executable engine task under the
// runner's defaults.
func (spec *CampaignSpec) task(r *Runner) (*Task, error) {
	if spec.Source.IsStream() {
		return nil, fmt.Errorf("optirand: campaign %q: Stream sources are process-local (not serializable or replayable); they cannot compile to a task", spec.label())
	}
	if len(spec.Source.sets) == 0 {
		return nil, fmt.Errorf("optirand: campaign %q: no pattern source (construct one with Weights, Mixture, or Stream)", spec.label())
	}
	seed := spec.Seed
	if seed == 0 {
		seed = r.seed
	}
	t := &Task{
		Label:       spec.label(),
		Circuit:     spec.Circuit,
		Faults:      spec.Faults,
		WeightSets:  spec.Source.sets,
		Patterns:    spec.Patterns,
		Seed:        seed,
		CurveStep:   spec.CurveStep,
		Adaptive:    spec.Source.adaptiveConfig(),
		SimWorkers:  r.simWorkers,
		SimShards:   r.simShards,
		GoodMachine: r.goodMachine,
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func (spec *CampaignSpec) label() string {
	if spec.Label != "" {
		return spec.Label
	}
	if spec.Circuit != nil {
		return spec.Circuit.Name
	}
	return ""
}

// OptimizeSpec declares one run of the paper's OPTIMIZE procedure.
type OptimizeSpec struct {
	// Circuit is the netlist to optimize input probabilities for.
	Circuit *Circuit
	// Faults is the fault set F of the objective J_N.
	Faults []Fault
	// Options configures the optimizer; the zero value selects the
	// paper defaults. On a remote Runner only the wire-portable subset
	// (Confidence, Quantize, MaxSweeps, Workers) may be non-zero.
	Options OptimizeOptions
}

// SweepWeighting names one weight configuration of a sweep cell.
type SweepWeighting struct {
	// Name identifies the configuration ("uniform", "optimized", …) in
	// task labels and seeds (see TaskSeed in the engine contract).
	Name string
	// Source supplies the patterns; Stream sources cannot be swept.
	Source PatternSource
}

// SweepCircuit is one circuit of a sweep grid together with its fault
// list and the weightings to campaign with.
type SweepCircuit struct {
	// Name identifies the circuit in task labels and seeds.
	Name string
	// Circuit is the netlist under test.
	Circuit *Circuit
	// Faults is the fault list shared by the circuit's campaigns.
	Faults []Fault
	// Weightings are the weight configurations to cross with seeds.
	Weightings []SweepWeighting
	// Patterns overrides SweepSpec.Patterns for this circuit when > 0.
	Patterns int
}

// SweepSpec declares a multi-circuit × multi-weighting × multi-seed
// campaign grid. Per-task seeds derive from the base seed and the
// task's identity (circuit name, weighting name, repetition index),
// never from execution order, so a grid can grow, shrink, or reorder
// without reseeding surviving tasks — and produces identical results
// on every Runner backend.
type SweepSpec struct {
	// BaseSeed roots every task seed; 0 selects the Runner's seed.
	BaseSeed uint64
	// Repetitions is the number of independently seeded campaigns per
	// (circuit, weighting) cell; values < 1 mean 1.
	Repetitions int
	// Patterns is the default per-campaign pattern budget.
	Patterns int
	// CurveStep > 0 samples coverage curves every CurveStep patterns.
	CurveStep int
	// Circuits are the grid's rows.
	Circuits []SweepCircuit
	// Journal, when non-empty, makes this sweep resumable: completed
	// results are logged to a journal in the named directory as they
	// land, and a re-run of the sweep (same grid, same journal) replays
	// them instead of recomputing, executing only the residue — with
	// results byte-identical to an uninterrupted run. Overrides the
	// Runner's WithJournal directory for this sweep.
	//
	// Journal failures degrade durability, not correctness: a write
	// error (disk full, torn file) makes the journal stop accepting
	// appends — the sweep itself runs to completion with correct
	// results, and only the crashed-resume safety net is lost. A
	// journal found corrupt on open (failed record checksum) is
	// rejected loudly rather than replayed.
	Journal string
}

// source compiles the grid into its streaming engine form (identical
// labels and task seeds to the materialized expansion), applying the
// runner's defaults. Task-level validation happens when the source
// runs — the runner's streaming executor validates the whole grid
// before the first campaign, in constant memory.
func (spec *SweepSpec) source(r *Runner) (*engine.Sweep, error) {
	base := spec.BaseSeed
	if base == 0 {
		base = r.seed
	}
	s := &engine.Sweep{
		BaseSeed:    base,
		Repetitions: spec.Repetitions,
		Patterns:    spec.Patterns,
		CurveStep:   spec.CurveStep,
		SimWorkers:  r.simWorkers,
		SimShards:   r.simShards,
		GoodMachine: r.goodMachine,
	}
	for _, sc := range spec.Circuits {
		ec := engine.SweepCircuit{
			Name:     sc.Name,
			Circuit:  sc.Circuit,
			Faults:   sc.Faults,
			Patterns: sc.Patterns,
		}
		for _, wt := range sc.Weightings {
			if wt.Source.IsStream() {
				return nil, fmt.Errorf("optirand: sweep %s/%s: Stream sources cannot be swept (a sweep's campaigns must be replayable from their seeds)", sc.Name, wt.Name)
			}
			if len(wt.Source.sets) == 0 {
				return nil, fmt.Errorf("optirand: sweep %s/%s: no pattern source", sc.Name, wt.Name)
			}
			ec.Weightings = append(ec.Weightings, engine.Weighting{
				Name:     wt.Name,
				Sets:     wt.Source.sets,
				Adaptive: wt.Source.adaptiveConfig(),
			})
		}
		s.Circuits = append(s.Circuits, ec)
	}
	return s, nil
}
