package optirand_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"reflect"

	"optirand"
	"optirand/internal/dist"
)

// Example_service runs one SweepSpec through two Runners — an
// in-process pool and an optirandd daemon (the flow of
// examples/service): the cold submission executes on the daemon's
// worker fleet, the warm re-submission is answered from its
// content-addressed result cache, and all three result sets are
// bit-identical.
func Example_service() {
	srv := dist.NewServer(dist.ServerOptions{Workers: 2, CacheSize: 64})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	b, _ := optirand.BenchmarkByName("c432")
	c := b.Build()
	sweep := optirand.SweepSpec{BaseSeed: 1987, Repetitions: 2, Patterns: 500}
	sweep.Circuits = append(sweep.Circuits, optirand.SweepCircuit{
		Name:    "c432",
		Circuit: c,
		Faults:  optirand.CollapsedFaults(c),
		Weightings: []optirand.SweepWeighting{
			{Name: "conventional", Source: optirand.Weights(optirand.UniformWeights(c))},
		},
	})

	ctx := context.Background()
	remote := optirand.NewRunner(optirand.WithRemote(ln.Addr().String()), optirand.WithWorkers(2))
	defer remote.Close()
	local := optirand.NewRunner()
	defer local.Close()

	cold, err := remote.Sweep(ctx, sweep)
	if err != nil {
		panic(err)
	}
	warm, err := remote.Sweep(ctx, sweep)
	if err != nil {
		panic(err)
	}
	ref, err := local.Sweep(ctx, sweep)
	if err != nil {
		panic(err)
	}

	identical := true
	for i := range ref {
		identical = identical &&
			reflect.DeepEqual(ref[i].Campaign, cold[i].Campaign) &&
			reflect.DeepEqual(ref[i].Campaign, warm[i].Campaign)
	}
	fmt.Println("tasks:", len(ref))
	fmt.Println("remote == local, cold == warm:", identical)
	// Output:
	// tasks: 2
	// remote == local, cold == warm: true
}
