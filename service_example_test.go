package optirand_test

import (
	"fmt"
	"net"
	"net/http"
	"reflect"

	"optirand"
	"optirand/internal/dist"
	"optirand/internal/engine"
)

// Example_service runs a sweep through an in-process optirandd daemon
// (the flow of examples/service): cold submission executes on the
// daemon's worker fleet, warm re-submission is answered from the
// content-addressed result cache, and both are bit-identical to the
// in-process engine.
func Example_service() {
	srv := dist.NewServer(dist.ServerOptions{Workers: 2, CacheSize: 64})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	b, _ := optirand.BenchmarkByName("c432")
	c := b.Build()
	sweep := &engine.Sweep{BaseSeed: 1987, Repetitions: 2, Patterns: 500}
	sweep.Circuits = append(sweep.Circuits, engine.SweepCircuit{
		Name:    "c432",
		Circuit: c,
		Faults:  optirand.CollapsedFaults(c),
		Weightings: []engine.Weighting{
			{Name: "conventional", Sets: [][]float64{optirand.UniformWeights(c)}},
		},
	})
	tasks := sweep.Tasks()

	client := dist.NewClient(ln.Addr().String())
	cold, coldHits, err := client.Sweep(tasks)
	if err != nil {
		panic(err)
	}
	warm, warmHits, err := client.Sweep(tasks)
	if err != nil {
		panic(err)
	}
	local, err := engine.Run(tasks, 0)
	if err != nil {
		panic(err)
	}

	identical := reflect.DeepEqual(cold, warm)
	for i := range local {
		identical = identical && reflect.DeepEqual(local[i].Campaign, cold[i])
	}
	fmt.Println("cold cache hits:", coldHits)
	fmt.Println("warm cache hits:", warmHits)
	fmt.Println("remote == local, cold == warm:", identical)
	// Output:
	// cold cache hits: 0
	// warm cache hits: 2
	// remote == local, cold == warm: true
}
