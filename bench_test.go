// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics: N_conv / N_opt report the required test lengths the
// run computed (the content of Tables 1/3), cov% reports simulated
// coverage (Tables 2/4). Sub-benchmarks are named after the paper's
// circuits.
package optirand_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"optirand"
	"optirand/internal/engine"
)

// benchLab caches circuits, fault lists and optimization results so
// that benchmark timings measure the intended phase only.
type benchLab struct {
	once    sync.Once
	circ    map[string]*optirand.Circuit
	faults  map[string][]optirand.Fault
	optimal map[string]*optirand.OptimizeResult
}

var lab benchLab

func (l *benchLab) init(b *testing.B) {
	b.Helper()
	l.once.Do(func() {
		l.circ = map[string]*optirand.Circuit{}
		l.faults = map[string][]optirand.Fault{}
		l.optimal = map[string]*optirand.OptimizeResult{}
		for _, bm := range optirand.Benchmarks() {
			c := bm.Build()
			l.circ[bm.Name] = c
			all := optirand.CollapsedFaults(c)
			probs := optirand.EstimateDetectProbs(c, all, optirand.UniformWeights(c))
			var live []optirand.Fault
			for i, f := range all {
				if probs[i] > 0 {
					live = append(live, f)
				}
			}
			l.faults[bm.Name] = live
		}
	})
}

func (l *benchLab) optimize(b *testing.B, name string) *optirand.OptimizeResult {
	b.Helper()
	l.init(b)
	if r, ok := l.optimal[name]; ok {
		return r
	}
	c := l.circ[name]
	r, err := optirand.OptimizeWeights(c, l.faults[name], optirand.OptimizeOptions{Quantize: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	l.optimal[name] = r
	return r
}

// BenchmarkTable1RequiredLength measures the conventional-test-length
// computation (ANALYSIS + SORT + NORMALIZE) per circuit — the content
// of the paper's Table 1.
func BenchmarkTable1RequiredLength(b *testing.B) {
	lab.init(b)
	for _, bm := range optirand.Benchmarks() {
		c := lab.circ[bm.Name]
		faults := lab.faults[bm.Name]
		w := optirand.UniformWeights(c)
		b.Run(bm.PaperName, func(b *testing.B) {
			var n float64
			for i := 0; i < b.N; i++ {
				probs := optirand.EstimateDetectProbs(c, faults, w)
				n = optirand.RequiredTestLength(probs, optirand.DefaultConfidence).N
			}
			b.ReportMetric(n, "N_conv")
		})
	}
}

// BenchmarkTable2ConventionalSim measures the conventional-pattern
// fault-simulation campaigns of Table 2.
func BenchmarkTable2ConventionalSim(b *testing.B) {
	lab.init(b)
	for _, bm := range optirand.MarkedBenchmarks() {
		c := lab.circ[bm.Name]
		faults := lab.faults[bm.Name]
		w := optirand.UniformWeights(c)
		b.Run(bm.PaperName, func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				res := optirand.SimulateRandomTest(c, faults, w, bm.SimPatterns, 1987, 0)
				cov = res.Coverage()
			}
			b.ReportMetric(100*cov, "cov%")
		})
	}
}

// BenchmarkTable3Optimize measures the OPTIMIZE procedure per circuit —
// the content of Table 3 (and the timing basis of Table 5).
func BenchmarkTable3Optimize(b *testing.B) {
	lab.init(b)
	for _, bm := range optirand.MarkedBenchmarks() {
		c := lab.circ[bm.Name]
		faults := lab.faults[bm.Name]
		b.Run(bm.PaperName, func(b *testing.B) {
			var last *optirand.OptimizeResult
			for i := 0; i < b.N; i++ {
				r, err := optirand.OptimizeWeights(c, faults, optirand.OptimizeOptions{Quantize: 0.05})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.InitialN, "N_conv")
			b.ReportMetric(last.FinalN, "N_opt")
		})
	}
}

// BenchmarkTable4OptimizedSim measures the optimized-pattern campaigns
// of Table 4 (optimization excluded from the timing).
func BenchmarkTable4OptimizedSim(b *testing.B) {
	lab.init(b)
	for _, bm := range optirand.MarkedBenchmarks() {
		c := lab.circ[bm.Name]
		faults := lab.faults[bm.Name]
		opt := lab.optimize(b, bm.Name)
		b.Run(bm.PaperName, func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				res := optirand.SimulateRandomTest(c, faults, opt.Weights, bm.SimPatterns, 1987, 0)
				cov = res.Coverage()
			}
			b.ReportMetric(100*cov, "cov%")
		})
	}
}

// BenchmarkTable5OptimizeCPU isolates the per-analysis cost that
// dominates the paper's Table 5: one full testability analysis on the
// largest marked circuit.
func BenchmarkTable5OptimizeCPU(b *testing.B) {
	lab.init(b)
	c := lab.circ["s2"]
	faults := lab.faults["s2"]
	w := optirand.UniformWeights(c)
	an := optirand.NewAnalyzer(c)
	probs := make([]float64, len(faults))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Perturb one weight so the analyzer cannot skip work.
		w[i%len(w)] = 0.4 + 0.2*float64(i%2)
		an.Run(w)
		an.DetectProbsInto(faults, probs)
	}
}

// BenchmarkFig2CoverageCurve measures the S1 coverage-curve generation
// of Figure 2 (both weight sets, 12,000 patterns, sampled every 500).
func BenchmarkFig2CoverageCurve(b *testing.B) {
	lab.init(b)
	c := lab.circ["s1"]
	faults := lab.faults["s1"]
	opt := lab.optimize(b, "s1")
	uniform := optirand.UniformWeights(c)
	b.ResetTimer()
	var covConv, covOpt float64
	for i := 0; i < b.N; i++ {
		conv := optirand.SimulateRandomTest(c, faults, uniform, 12000, 1987, 500)
		o := optirand.SimulateRandomTest(c, faults, opt.Weights, 12000, 1987, 500)
		covConv, covOpt = conv.Coverage(), o.Coverage()
	}
	b.ReportMetric(100*covConv, "conv_cov%")
	b.ReportMetric(100*covOpt, "opt_cov%")
}

// BenchmarkAppendixWeights measures the full optimized-weight
// generation for the appendix circuits (C2670, C7552) on the 0.05 grid.
func BenchmarkAppendixWeights(b *testing.B) {
	lab.init(b)
	for _, name := range []string{"c2670", "c7552"} {
		c := lab.circ[name]
		faults := lab.faults[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := optirand.OptimizeWeights(c, faults, optirand.OptimizeOptions{Quantize: 0.05}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations -----------------------------------------------------

// BenchmarkAblationIncrementalAnalysis compares OPTIMIZE with the
// cone-limited incremental signal-probability update (the paper §5.1's
// efficiency claim) against full recomputation.
func BenchmarkAblationIncrementalAnalysis(b *testing.B) {
	lab.init(b)
	c := lab.circ["s1"]
	faults := lab.faults["s1"]
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"incremental", false}, {"full", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := optirand.OptimizeWeights(c, faults, optirand.OptimizeOptions{
					DisableIncremental: mode.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHardFaultSubset compares the bound-based NORMALIZE
// (evaluating only the nf hardest faults, paper §4 observation (1))
// against direct evaluation of the full objective.
func BenchmarkAblationHardFaultSubset(b *testing.B) {
	lab.init(b)
	c := lab.circ["s2"]
	faults := lab.faults["s2"]
	probs := optirand.EstimateDetectProbs(c, faults, optirand.UniformWeights(c))
	b.Run("normalize-bounds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			optirand.RequiredTestLength(probs, optirand.DefaultConfidence)
		}
	})
	b.Run("direct-full-sum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			requiredDirect(probs, optirand.DefaultConfidence)
		}
	})
}

// BenchmarkAblationNewtonVsBisection compares the Newton iteration of
// eq. (15) against derivative bisection inside MINIMIZE.
func BenchmarkAblationNewtonVsBisection(b *testing.B) {
	lab.init(b)
	c := lab.circ["c7552"]
	faults := lab.faults["c7552"]
	for _, mode := range []struct {
		name   string
		bisect bool
	}{{"newton", false}, {"bisection", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := optirand.OptimizeWeights(c, faults, optirand.OptimizeOptions{
					UseBisection: mode.bisect,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationQuantization reports the test-length cost of
// snapping the optimized weights to the paper's 0.05 appendix grid.
func BenchmarkAblationQuantization(b *testing.B) {
	lab.init(b)
	c := lab.circ["s1"]
	faults := lab.faults["s1"]
	for _, mode := range []struct {
		name string
		grid float64
	}{{"continuous", 0}, {"grid-0.05", 0.05}} {
		b.Run(mode.name, func(b *testing.B) {
			var n float64
			for i := 0; i < b.N; i++ {
				r, err := optirand.OptimizeWeights(c, faults, optirand.OptimizeOptions{Quantize: mode.grid})
				if err != nil {
					b.Fatal(err)
				}
				n = r.FinalN
			}
			b.ReportMetric(n, "N_opt")
		})
	}
}

// BenchmarkAblationMultiDistribution compares single-distribution
// optimization against the §5.3 partitioned extension on the divider.
func BenchmarkAblationMultiDistribution(b *testing.B) {
	lab.init(b)
	c := lab.circ["s2"]
	faults := lab.faults["s2"]
	b.Run("single", func(b *testing.B) {
		var n float64
		for i := 0; i < b.N; i++ {
			r, err := optirand.OptimizeWeights(c, faults, optirand.OptimizeOptions{})
			if err != nil {
				b.Fatal(err)
			}
			n = r.FinalN
		}
		b.ReportMetric(n, "N_opt")
	})
	b.Run("multi-3", func(b *testing.B) {
		var n float64
		for i := 0; i < b.N; i++ {
			m, err := optirand.OptimizeMultiDistribution(c, faults, 3, optirand.OptimizeOptions{})
			if err != nil {
				b.Fatal(err)
			}
			n = m.MixtureN
		}
		b.ReportMetric(n, "N_mix")
	})
}

// BenchmarkAblationHybridTopOff compares pure optimized-random testing
// against the §5.2 hybrid (random + PODEM top-off) on S1, reporting
// achieved coverage.
func BenchmarkAblationHybridTopOff(b *testing.B) {
	lab.init(b)
	c := lab.circ["s1"]
	faults := lab.faults["s1"]
	opt := lab.optimize(b, "s1")
	b.Run("random-only-12000", func(b *testing.B) {
		var cov float64
		for i := 0; i < b.N; i++ {
			res := optirand.SimulateRandomTest(c, faults, opt.Weights, 12000, 42, 0)
			cov = res.Coverage()
		}
		b.ReportMetric(100*cov, "cov%")
	})
	b.Run("hybrid-2000+topoff", func(b *testing.B) {
		var cov float64
		var patterns int
		for i := 0; i < b.N; i++ {
			h := optirand.HybridTest(c, faults, opt.Weights, 2000, 42, 4096)
			cov = h.Coverage()
			patterns = h.RandomPatterns + h.TopOffPatterns
		}
		b.ReportMetric(100*cov, "cov%")
		b.ReportMetric(float64(patterns), "patterns")
	})
}

// BenchmarkATPGThroughput measures raw PODEM speed over the full
// collapsed fault list of the comparator.
func BenchmarkATPGThroughput(b *testing.B) {
	lab.init(b)
	c := lab.circ["s1"]
	faults := lab.faults["s1"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := optirand.GenerateTests(c, faults, 4096)
		if res.Detected == 0 {
			b.Fatal("ATPG produced nothing")
		}
	}
}

// BenchmarkEstimators compares the three ANALYSIS providers the paper
// names (PROTEST-style analytic, STAFAN counting, exact BDD) on one
// circuit where all are feasible.
func BenchmarkEstimators(b *testing.B) {
	lab.init(b)
	c := lab.circ["c880"]
	faults := lab.faults["c880"]
	w := optirand.UniformWeights(c)
	b.Run("analytic-COP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			optirand.EstimateDetectProbs(c, faults, w)
		}
	})
	b.Run("stafan-256w", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			optirand.NewStafanEstimator(c, 256, 1).DetectProbs(w, faults)
		}
	})
	b.Run("exact-bdd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			optirand.ExactDetectProbs(c, faults, w)
		}
	})
}

// BenchmarkFaultSimulatorThroughput measures raw fault-simulation speed
// (pattern-faults per second) on the multiplier, the gate-richest
// benchmark.
func BenchmarkFaultSimulatorThroughput(b *testing.B) {
	lab.init(b)
	c := lab.circ["c6288"]
	faults := lab.faults["c6288"]
	w := optirand.UniformWeights(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optirand.SimulateRandomTest(c, faults, w, 1024, uint64(i), 0)
	}
}

// --- Parallel engine -----------------------------------------------

// BenchmarkCampaignWorkers compares serial against fault-sharded
// parallel campaign throughput on the larger generated circuits. The
// results are bit-identical at every worker count (enforced by the
// equivalence suites in internal/sim and internal/core); only the wall
// clock may differ.
func BenchmarkCampaignWorkers(b *testing.B) {
	lab.init(b)
	for _, name := range []string{"c6288", "s2"} {
		c := lab.circ[name]
		faults := lab.faults[name]
		w := optirand.UniformWeights(c)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers-%d", name, workers), func(b *testing.B) {
				var cov float64
				for i := 0; i < b.N; i++ {
					res := optirand.SimulateRandomTestWorkers(c, faults, w, 2048, 1987, 0, workers)
					cov = res.Coverage()
				}
				b.ReportMetric(100*cov, "cov%")
				b.ReportMetric(2048*float64(len(faults))*float64(b.N)/b.Elapsed().Seconds(), "patfaults/s")
			})
		}
	}
}

// BenchmarkOptimizeWorkers compares the serial OPTIMIZE loop against
// the concurrent-PREPARE variant (the two cofactor analyses of each
// coordinate overlap; results are bit-identical).
func BenchmarkOptimizeWorkers(b *testing.B) {
	lab.init(b)
	c := lab.circ["s1"]
	faults := lab.faults["s1"]
	for _, workers := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var n float64
			for i := 0; i < b.N; i++ {
				r, err := optirand.OptimizeWeights(c, faults, optirand.OptimizeOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				n = r.FinalN
			}
			b.ReportMetric(n, "N_opt")
		})
	}
}

// BenchmarkEngineSweep measures the campaign engine's task fan-out: the
// four marked circuits × two weightings × four seeds on pools of
// varying width.
func BenchmarkEngineSweep(b *testing.B) {
	lab.init(b)
	sweep := &engine.Sweep{BaseSeed: 1987, Repetitions: 4, Patterns: 1024}
	for _, bm := range optirand.MarkedBenchmarks() {
		c := lab.circ[bm.Name]
		uniform := optirand.UniformWeights(c)
		skew := optirand.UniformWeights(c)
		for i := range skew {
			skew[i] = 0.15 + 0.7*float64(i%4)/3
		}
		sweep.Circuits = append(sweep.Circuits, engine.SweepCircuit{
			Name:    bm.Name,
			Circuit: c,
			Faults:  lab.faults[bm.Name],
			Weightings: []engine.Weighting{
				{Name: "uniform", Sets: [][]float64{uniform}},
				{Name: "skewed", Sets: [][]float64{skew}},
			},
		})
	}
	tasks := sweep.Tasks()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(context.Background(), tasks, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(tasks)), "tasks")
		})
	}
}

// requiredDirect is the naive O(|F|·log N) version of the test-length
// computation, used as the ablation baseline for NORMALIZE.
func requiredDirect(probs []float64, confidence float64) float64 {
	// Direct bisection over the full objective; mirrors
	// testlen.Required but stays in the benchmark package to keep the
	// comparison honest (no internal shortcuts).
	q := -math.Log(confidence)
	objective := func(n float64) float64 {
		j := 0.0
		for _, p := range probs {
			j += math.Exp(-n * p)
		}
		return j
	}
	if objective(0) <= q {
		return 0
	}
	hi := 1.0
	for objective(hi) > q {
		hi *= 2
	}
	lo := hi / 2
	for i := 0; i < 100 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if objective(mid) <= q {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
